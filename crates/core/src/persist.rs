//! Persistence of BEAR's precomputed index.
//!
//! Preprocessing is the expensive phase; a production deployment computes
//! it once and serves queries from many processes, so the on-disk index
//! is both a performance artifact and a durability liability: a torn
//! write or a flipped bit must never reach the query path. This module
//! provides:
//!
//! * **Format v2 (`BEARIDX2`)** — the fully-resident write format. Ten
//!   framed sections (`tag [4] | len u64 LE | payload | crc32 u32 LE`),
//!   one per logical component (metadata, permutation, partition arrays,
//!   the six matrices), followed by a 20-byte trailer
//!   (`"BEARTRL2" | whole-file crc32 | file length`). The trailer is
//!   verified before any payload is parsed, so truncation and bit rot
//!   fail fast with [`bear_sparse::Error::CorruptIndex`] instead of
//!   feeding damaged bytes to the structural validators.
//! * **Format v3 (`BEARIDX3`)** — the out-of-core sharded format
//!   (DESIGN.md §18). The spoke factors `L₁⁻¹`/`U₁⁻¹` are split into one
//!   individually CRC'd segment per diagonal block
//!   (`"SPKB" | payload len u64 | payload | crc32`), laid out
//!   contiguously right after the magic; a *resident region* follows
//!   with the nine remaining sections (hub/Schur matrices, partition
//!   arrays, and the `SDIR` segment directory), and a 28-byte trailer
//!   (`"BEARTRL3" | resident-region crc32 | resident offset | file
//!   length`) closes the file. [`Bear::load_with`] CRC-verifies every
//!   segment in bounded chunks at load time, then serves queries through
//!   a [`crate::paging::BlockPager`] that materializes segments lazily
//!   under a [`MemBudget`]; [`V3StreamWriter`] lets preprocessing stream
//!   finished block shards to disk so peak preprocessing RSS is
//!   independent of total index size.
//! * **Crash-safe writes** — [`Bear::save`] builds the image in memory,
//!   writes it to a hidden temp file *in the target directory*, fsyncs
//!   the file, atomically renames it over the destination, and fsyncs
//!   the directory. A crash at any point leaves either the old index or
//!   the new one, never a half-written hybrid under the real name.
//! * **Legacy reads** — [`Bear::load`] still reads v1 (`BEARIDX1`)
//!   files, so indexes written by earlier binaries keep working; only
//!   the writer moved to v2.
//! * **Quarantine** — [`Bear::load_or_quarantine`] renames an artifact
//!   that fails integrity checks to `<path>.corrupt` so operators can
//!   inspect the bytes offline and a retry loop cannot re-serve it.
//! * **Offline verification** — [`verify_index`] replays the full load
//!   validation and returns an [`IndexReport`] for the
//!   `bear verify-index` subcommand.
//!
//! Every load-path failure — framing, checksum, or a payload that parses
//! but violates a structural invariant — is reported as
//! `Error::CorruptIndex { section, detail }` naming the section that
//! failed. The crash-injection suite in
//! `crates/core/tests/crash_injection.rs` sweeps truncations and bit
//! flips over real images to hold that contract.

use crate::paging::{
    corrupt_shard, BlockPager, FactorPair, FileSource, SegmentMeta, SegmentSource, SpokeFactors,
    SEGMENT_FRAME_OVERHEAD, SEGMENT_TAG,
};
use crate::precompute::Bear;
use crate::solver::RwrSolver as _;
use bear_sparse::mem::{MemBudget, MemoryUsage};
use bear_sparse::{CscMatrix, CsrMatrix, Error, Permutation, Result};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_V1: &[u8; 8] = b"BEARIDX1";
const MAGIC_V2: &[u8; 8] = b"BEARIDX2";
const MAGIC_V3: &[u8; 8] = b"BEARIDX3";
const TRAILER_MAGIC: &[u8; 8] = b"BEARTRL2";
/// Trailer layout: magic (8) + whole-file crc32 (4) + file length (8).
const TRAILER_LEN: usize = 20;
const TRAILER_MAGIC_V3: &[u8; 8] = b"BEARTRL3";
/// v3 trailer layout: magic (8) + resident-region crc32 (4) +
/// resident-region offset (8) + file length (8). The CRC covers only the
/// resident region — each spoke segment carries its own frame CRC, so
/// integrity checks never have to hash the (potentially larger-than-RAM)
/// segment area in one piece.
const TRAILER_LEN_V3: usize = 28;
/// Section frame overhead: tag (4) + payload length (8) + payload crc (4).
const FRAME_OVERHEAD: usize = 16;
/// Chunk size for streamed checksum verification — bounds peak
/// allocation when verifying or loading an index larger than RAM.
const VERIFY_CHUNK: usize = 256 * 1024;
/// Bytes per `SDIR` directory entry: offset, frame length, crc, block
/// dimension, `L₁⁻¹` nnz, `U₁⁻¹` nnz — six `u64`s.
const SDIR_ENTRY_LEN: usize = 48;

/// The ten v2 sections, in file order: `(tag, section name)`. The name
/// is what `Error::CorruptIndex { section, .. }` reports.
const SECTIONS: [(&[u8; 4], &str); 10] = [
    (b"META", "meta"),
    (b"PERM", "perm"),
    (b"BSIZ", "block_sizes"),
    (b"DEGS", "degrees"),
    (b"L1IV", "l1_inv"),
    (b"U1IV", "u1_inv"),
    (b"L2IV", "l2_inv"),
    (b"U2IV", "u2_inv"),
    (b"H12M", "h12"),
    (b"H21M", "h21"),
];

/// The nine resident v3 sections, in resident-region order. The spoke
/// factors are absent — they live in the per-block segments indexed by
/// `SDIR`.
const SECTIONS_V3: [(&[u8; 4], &str); 9] = [
    (b"META", "meta"),
    (b"PERM", "perm"),
    (b"BSIZ", "block_sizes"),
    (b"DEGS", "degrees"),
    (b"L2IV", "l2_inv"),
    (b"U2IV", "u2_inv"),
    (b"H12M", "h12"),
    (b"H21M", "h21"),
    (b"SDIR", "segment_directory"),
];

fn io_err(e: std::io::Error) -> Error {
    Error::InvalidStructure(format!("index io error: {e}"))
}

fn corrupt(section: &'static str, detail: impl Into<String>) -> Error {
    Error::CorruptIndex { section, detail: detail.into() }
}

/// Maps any non-`CorruptIndex` error (structural validation, bounded-read
/// truncation, ...) into `CorruptIndex` for `section`, preserving the
/// inner message as the detail. Already-typed corruption passes through
/// so the most specific section wins.
fn wrap(section: &'static str) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::CorruptIndex { .. } => e,
        other => corrupt(section, other.to_string()),
    }
}

/// Re-tags a `CorruptIndex` with `section`, keeping the detail. Used
/// when a positional read (whose source reports generic segment errors)
/// serves a differently-named structure like the trailer.
fn retag(section: &'static str) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::CorruptIndex { detail, .. } => corrupt(section, detail),
        other => other,
    }
}

/// Maps a read failure into shard-tagged corruption.
fn shard_err(b: usize) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::CorruptIndex { detail, .. } => corrupt_shard(b, detail),
        other => other,
    }
}

/// Converts an on-disk `u64` (length, dimension, or index) to `usize`,
/// returning a typed error when it does not fit. On 32-bit targets a
/// plain `as usize` would silently truncate an oversized value into a
/// *valid-looking* small one, turning a corrupt file into wrong answers
/// instead of a load failure.
fn checked_usize(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| {
        Error::InvalidStructure(format!("corrupt index: {what} {v} does not fit in usize"))
    })
}

/// Decodes 8 little-endian bytes. Callers always pass exactly 8 bytes
/// (sliced via bounds-checked cursors).
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    u64::from_le_bytes(a)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(b);
    u32::from_le_bytes(a)
}

// ---------------------------------------------------------------------------
// v2 writer
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Raw (unprefixed) `u64` array — the section frame already carries the
/// byte length, so PERM/BSIZ/DEGS payloads need no inner prefix.
fn push_raw_u64s(out: &mut Vec<u8>, data: &[usize]) {
    for &v in data {
        push_u64(out, v as u64);
    }
}

/// Length-prefixed `u64` array, used *inside* matrix payloads where
/// several arrays share one frame.
fn push_usize_array(out: &mut Vec<u8>, data: &[usize]) {
    push_u64(out, data.len() as u64);
    push_raw_u64s(out, data);
}

fn push_f64_array(out: &mut Vec<u8>, data: &[f64]) {
    push_u64(out, data.len() as u64);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Shared CSC/CSR payload: `nrows | ncols | indptr | indices | values`.
fn matrix_payload(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
) -> Vec<u8> {
    let mut p = Vec::with_capacity(16 + 8 * (indptr.len() + indices.len() + values.len() + 3));
    push_u64(&mut p, nrows as u64);
    push_u64(&mut p, ncols as u64);
    push_usize_array(&mut p, indptr);
    push_usize_array(&mut p, indices);
    push_f64_array(&mut p, values);
    p
}

fn push_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    push_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crate::crc32::crc32(payload).to_le_bytes());
}

impl Bear {
    /// Serializes the index as a complete v2 image (sections + trailer),
    /// ready to be written atomically. A paged index is materialized
    /// block by block first (v2 is fully resident by definition).
    fn to_v2_bytes(&self) -> Result<Vec<u8>> {
        let (l1_inv, u1_inv) = self.spokes.to_whole()?;
        let mut meta = Vec::with_capacity(24);
        push_u64(&mut meta, self.n1 as u64);
        push_u64(&mut meta, self.n2 as u64);
        meta.extend_from_slice(&self.c.to_le_bytes());

        let mut perm = Vec::new();
        push_raw_u64s(&mut perm, self.perm.as_new_to_old());
        let mut bsiz = Vec::new();
        push_raw_u64s(&mut bsiz, &self.block_sizes);
        let mut degs = Vec::new();
        push_raw_u64s(&mut degs, &self.degrees);

        let csc = |m: &CscMatrix| {
            matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values())
        };
        let csr = |m: &CsrMatrix| {
            matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values())
        };
        let payloads: [(usize, Vec<u8>); 10] = [
            (0, meta),
            (1, perm),
            (2, bsiz),
            (3, degs),
            (4, csc(&l1_inv)),
            (5, csc(&u1_inv)),
            (6, csc(&self.l2_inv)),
            (7, csc(&self.u2_inv)),
            (8, csr(&self.h12)),
            (9, csr(&self.h21)),
        ];

        let body: usize =
            payloads.iter().map(|(_, p)| p.len() + FRAME_OVERHEAD).sum::<usize>() + MAGIC_V2.len();
        let mut out = Vec::with_capacity(body + TRAILER_LEN);
        out.extend_from_slice(MAGIC_V2);
        for (i, payload) in &payloads {
            push_section(&mut out, SECTIONS[*i].0, payload);
        }

        let trailer_off = out.len();
        let file_crc = crate::crc32::crc32(&out);
        out.extend_from_slice(TRAILER_MAGIC);
        out.extend_from_slice(&file_crc.to_le_bytes());
        push_u64(&mut out, (trailer_off + TRAILER_LEN) as u64);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// v3 writer
// ---------------------------------------------------------------------------

/// Borrowed resident pieces a v3 writer serializes after the segments —
/// everything except the spoke factors.
pub(crate) struct ResidentParts<'a> {
    pub(crate) n1: usize,
    pub(crate) n2: usize,
    pub(crate) c: f64,
    pub(crate) perm: &'a Permutation,
    pub(crate) block_sizes: &'a [usize],
    pub(crate) degrees: &'a [usize],
    pub(crate) l2_inv: &'a CscMatrix,
    pub(crate) u2_inv: &'a CscMatrix,
    pub(crate) h12: &'a CsrMatrix,
    pub(crate) h21: &'a CsrMatrix,
}

/// `SDIR` payload: segment count, then six `u64`s per segment.
fn sdir_payload(dir: &[SegmentMeta]) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + dir.len() * SDIR_ENTRY_LEN);
    push_u64(&mut p, dir.len() as u64);
    for s in dir {
        push_u64(&mut p, s.offset);
        push_u64(&mut p, s.frame_len);
        push_u64(&mut p, s.crc as u64);
        push_u64(&mut p, s.block_dim);
        push_u64(&mut p, s.l1_nnz);
        push_u64(&mut p, s.u1_nnz);
    }
    p
}

fn parse_sdir(payload: &[u8]) -> Result<Vec<SegmentMeta>> {
    let mut r = SectionReader::new(payload, "segment_directory");
    let count = r.u64()?;
    let need = count.checked_mul(SDIR_ENTRY_LEN as u64).filter(|&n| n <= r.remaining() as u64);
    if need.is_none() {
        return Err(corrupt(
            "segment_directory",
            format!("corrupt segment count {count}: payload holds {} bytes", r.remaining()),
        ));
    }
    let count = checked_usize(count, "segment count").map_err(wrap("segment_directory"))?;
    let mut dir = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = r.u64()?;
        let frame_len = r.u64()?;
        let crc64 = r.u64()?;
        let crc = u32::try_from(crc64).map_err(|_| {
            corrupt("segment_directory", format!("segment crc {crc64} overflows u32"))
        })?;
        let block_dim = r.u64()?;
        let l1_nnz = r.u64()?;
        let u1_nnz = r.u64()?;
        dir.push(SegmentMeta { offset, frame_len, crc, block_dim, l1_nnz, u1_nnz });
    }
    r.finish()?;
    Ok(dir)
}

/// Cross-checks the directory against the file geometry: one segment
/// per block, frames laid out contiguously from right after the magic to
/// the start of the resident region. Contiguity implies no overlap and
/// no unindexed (hence unverified) gaps.
fn validate_v3_dir(dir: &[SegmentMeta], num_blocks: usize, resident_off: u64) -> Result<()> {
    if dir.len() != num_blocks {
        return Err(corrupt(
            "segment_directory",
            format!("directory holds {} segments for {num_blocks} blocks", dir.len()),
        ));
    }
    let mut expected = MAGIC_V3.len() as u64;
    for (b, meta) in dir.iter().enumerate() {
        if meta.offset != expected {
            return Err(corrupt_shard(
                b,
                format!("segment at offset {} (expected {expected})", meta.offset),
            ));
        }
        if meta.frame_len < SEGMENT_FRAME_OVERHEAD as u64 {
            return Err(corrupt_shard(b, format!("frame length {} too short", meta.frame_len)));
        }
        expected = expected
            .checked_add(meta.frame_len)
            .filter(|&e| e <= resident_off)
            .ok_or_else(|| {
                corrupt_shard(b, format!("segment extends past the resident region at {resident_off}"))
            })?;
    }
    if expected != resident_off {
        return Err(corrupt(
            "segment_directory",
            format!(
                "{} unindexed bytes between segments and resident region",
                resident_off - expected
            ),
        ));
    }
    Ok(())
}

/// Frames one block's segment: tag, payload length, payload, CRC.
fn segment_frame_bytes(block_index: usize, pair: &FactorPair) -> (Vec<u8>, u32) {
    let payload = crate::paging::encode_segment(block_index, pair);
    let crc = crate::crc32::crc32(&payload);
    let mut frame = Vec::with_capacity(payload.len() + SEGMENT_FRAME_OVERHEAD);
    frame.extend_from_slice(SEGMENT_TAG);
    push_u64(&mut frame, payload.len() as u64);
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc.to_le_bytes());
    (frame, crc)
}

/// Serializes the v3 resident region: the nine [`SECTIONS_V3`] frames.
fn v3_resident_bytes(p: &ResidentParts<'_>, dir: &[SegmentMeta]) -> Vec<u8> {
    let mut meta = Vec::with_capacity(24);
    push_u64(&mut meta, p.n1 as u64);
    push_u64(&mut meta, p.n2 as u64);
    meta.extend_from_slice(&p.c.to_le_bytes());
    let mut perm = Vec::new();
    push_raw_u64s(&mut perm, p.perm.as_new_to_old());
    let mut bsiz = Vec::new();
    push_raw_u64s(&mut bsiz, p.block_sizes);
    let mut degs = Vec::new();
    push_raw_u64s(&mut degs, p.degrees);
    let csc =
        |m: &CscMatrix| matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values());
    let csr =
        |m: &CsrMatrix| matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values());
    let payloads: [Vec<u8>; 9] = [
        meta,
        perm,
        bsiz,
        degs,
        csc(p.l2_inv),
        csc(p.u2_inv),
        csr(p.h12),
        csr(p.h21),
        sdir_payload(dir),
    ];
    let body: usize = payloads.iter().map(|p| p.len() + FRAME_OVERHEAD).sum();
    let mut out = Vec::with_capacity(body);
    for (payload, (tag, _)) in payloads.iter().zip(SECTIONS_V3.iter()) {
        push_section(&mut out, tag, payload);
    }
    out
}

/// The 28-byte v3 trailer for a resident region starting at
/// `resident_off`.
fn v3_trailer(region: &[u8], resident_off: u64) -> [u8; TRAILER_LEN_V3] {
    let mut t = [0u8; TRAILER_LEN_V3];
    t[..8].copy_from_slice(TRAILER_MAGIC_V3);
    t[8..12].copy_from_slice(&crate::crc32::crc32(region).to_le_bytes());
    t[12..20].copy_from_slice(&resident_off.to_le_bytes());
    let total = resident_off + region.len() as u64 + TRAILER_LEN_V3 as u64;
    t[20..28].copy_from_slice(&total.to_le_bytes());
    t
}

impl Bear {
    fn resident_parts(&self) -> ResidentParts<'_> {
        ResidentParts {
            n1: self.n1,
            n2: self.n2,
            c: self.c,
            perm: &self.perm,
            block_sizes: &self.block_sizes,
            degrees: &self.degrees,
            l2_inv: &self.l2_inv,
            u2_inv: &self.u2_inv,
            h12: &self.h12,
            h21: &self.h21,
        }
    }

    /// Serializes the index as a complete v3 image: per-block spoke
    /// segments, resident region, trailer.
    fn to_v3_bytes(&self) -> Result<Vec<u8>> {
        let pairs = self.spokes.split_pairs(&self.block_sizes)?;
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V3);
        let mut dir = Vec::with_capacity(pairs.len());
        for (b, pair) in pairs.iter().enumerate() {
            let offset = out.len() as u64;
            let (frame, crc) = segment_frame_bytes(b, pair);
            dir.push(SegmentMeta {
                offset,
                frame_len: frame.len() as u64,
                crc,
                block_dim: pair.dim() as u64,
                l1_nnz: pair.l1.nnz() as u64,
                u1_nnz: pair.u1.nnz() as u64,
            });
            out.extend_from_slice(&frame);
        }
        let resident_off = out.len() as u64;
        let region = v3_resident_bytes(&self.resident_parts(), &dir);
        out.extend_from_slice(&region);
        out.extend_from_slice(&v3_trailer(&region, resident_off));
        Ok(out)
    }

    /// Writes the index to `path` in the sharded out-of-core v3 format,
    /// with the same crash-safe protocol as [`Bear::save`]. The result
    /// can be loaded fully resident or paged under a budget via
    /// [`Bear::load_with`].
    pub fn save_v3(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_v3_bytes()?)
    }
}

/// Under the `failpoints` feature, reports an armed `TruncateAt` for
/// `site` (clamped to `total`); identity (`None`) otherwise.
#[cfg(feature = "failpoints")]
fn injected_truncation(site: &str, total: u64) -> Option<u64> {
    match crate::failpoints::armed(site) {
        Some(crate::failpoints::FailAction::TruncateAt(k)) => Some(k.min(total)),
        _ => None,
    }
}

#[cfg(not(feature = "failpoints"))]
fn injected_truncation(_site: &str, _total: u64) -> Option<u64> {
    None
}

/// Streams a v3 image to disk block by block: preprocessing hands each
/// finished block's factors to [`V3StreamWriter::write_segment`] and
/// drops them, so peak RSS stays independent of total index size. The
/// commit protocol ([`V3StreamWriter::finish`]) mirrors [`write_atomic`]
/// — same temp-file naming, fsync-before-rename ordering, and failpoint
/// sites — so the crash-injection harness covers both writers.
pub(crate) struct V3StreamWriter {
    dir_path: PathBuf,
    tmp: PathBuf,
    path: PathBuf,
    file: Option<std::fs::File>,
    pos: u64,
    dir: Vec<SegmentMeta>,
    committed: bool,
}

impl V3StreamWriter {
    pub(crate) fn create(path: &Path) -> Result<Self> {
        let file_name = path.file_name().ok_or_else(|| Error::InvalidConfig {
            param: "path",
            reason: format!("index path {} has no file name", path.display()),
        })?;
        let dir_path = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let tmp =
            dir_path.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
        let mut w = V3StreamWriter {
            dir_path,
            tmp,
            path: path.to_path_buf(),
            file: None,
            pos: 0,
            dir: Vec::new(),
            committed: false,
        };
        w.open_temp()?;
        Ok(w)
    }

    fn open_temp(&mut self) -> Result<()> {
        crate::fail_point!("persist::save::write");
        self.file = Some(std::fs::File::create(&self.tmp).map_err(io_err)?);
        self.append(MAGIC_V3)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let file = self.file.as_mut().ok_or_else(|| {
            Error::InvalidStructure("stream writer used after finish".into())
        })?;
        file.write_all(bytes).map_err(io_err)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Appends the next block's segment (blocks must arrive in ascending
    /// block order).
    pub(crate) fn write_segment(&mut self, pair: &FactorPair) -> Result<()> {
        let b = self.dir.len();
        let offset = self.pos;
        let (frame, crc) = segment_frame_bytes(b, pair);
        self.append(&frame)?;
        self.dir.push(SegmentMeta {
            offset,
            frame_len: frame.len() as u64,
            crc,
            block_dim: pair.dim() as u64,
            l1_nnz: pair.l1.nnz() as u64,
            u1_nnz: pair.u1.nnz() as u64,
        });
        Ok(())
    }

    /// Appends the resident region and trailer, then commits: fsync,
    /// atomic rename over the destination, directory fsync.
    pub(crate) fn finish(mut self, parts: &ResidentParts<'_>) -> Result<()> {
        let resident_off = self.pos;
        let region = v3_resident_bytes(parts, &self.dir);
        self.append(&region)?;
        self.append(&v3_trailer(&region, resident_off))?;
        // Torn-write parity with `write_atomic_steps`: an armed
        // truncation leaves a prefix in the temp file and "crashes"
        // before the rename.
        if let Some(k) = injected_truncation("persist::save::write", self.pos) {
            if k < self.pos {
                if let Some(file) = self.file.as_mut() {
                    file.set_len(k).map_err(io_err)?;
                }
                return Err(Error::InvalidStructure(
                    "failpoint 'persist::save::write' injected torn write".into(),
                ));
            }
        }
        crate::fail_point!("persist::save::sync");
        let file = self.file.take().ok_or_else(|| {
            Error::InvalidStructure("stream writer used after finish".into())
        })?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        apply_torn_injection(&self.tmp)?;
        crate::fail_point!("persist::save::rename");
        std::fs::rename(&self.tmp, &self.path).map_err(io_err)?;
        let dirf = std::fs::File::open(&self.dir_path).map_err(io_err)?;
        dirf.sync_all().map_err(io_err)?;
        self.committed = true;
        Ok(())
    }
}

impl Drop for V3StreamWriter {
    fn drop(&mut self) {
        if !self.committed {
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-safe write
// ---------------------------------------------------------------------------

/// Under the `failpoints` feature, an armed `TruncateAt(k)` at `site`
/// cuts the bytes to their first `k` — the torn-write half of a
/// simulated crash. Without the feature (or an arming) this is identity.
#[cfg(feature = "failpoints")]
fn injected_prefix<'a>(site: &str, bytes: &'a [u8]) -> &'a [u8] {
    match crate::failpoints::armed(site) {
        Some(crate::failpoints::FailAction::TruncateAt(k)) => {
            let k = usize::try_from(k).unwrap_or(usize::MAX).min(bytes.len());
            &bytes[..k]
        }
        _ => bytes,
    }
}

#[cfg(not(feature = "failpoints"))]
fn injected_prefix<'a>(_site: &str, bytes: &'a [u8]) -> &'a [u8] {
    bytes
}

/// Under the `failpoints` feature, `persist::save::torn` armed with
/// `TruncateAt`/`BitFlip` corrupts the already-synced temp file *and
/// lets the rename proceed* — a lying disk: save reports success, the
/// damage is only discoverable at load time.
#[cfg(feature = "failpoints")]
fn apply_torn_injection(tmp: &Path) -> Result<()> {
    use crate::failpoints::{armed, FailAction};
    match armed("persist::save::torn") {
        Some(FailAction::TruncateAt(k)) => {
            let data = std::fs::read(tmp).map_err(io_err)?;
            let k = usize::try_from(k).unwrap_or(usize::MAX).min(data.len());
            std::fs::write(tmp, &data[..k]).map_err(io_err)?;
        }
        Some(FailAction::BitFlip(bit)) => {
            let mut data = std::fs::read(tmp).map_err(io_err)?;
            if !data.is_empty() {
                let byte = usize::try_from(bit / 8).unwrap_or(0) % data.len();
                data[byte] ^= 1 << (bit % 8);
                std::fs::write(tmp, &data).map_err(io_err)?;
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(not(feature = "failpoints"))]
fn apply_torn_injection(_tmp: &Path) -> Result<()> {
    Ok(())
}

/// The ordered steps of the atomic write protocol. Failpoint sites mark
/// each crash window; the caller cleans up the temp file on error.
fn write_atomic_steps(dir: &Path, tmp: &Path, path: &Path, bytes: &[u8]) -> Result<()> {
    crate::fail_point!("persist::save::write");
    let to_write = injected_prefix("persist::save::write", bytes);
    let mut file = std::fs::File::create(tmp).map_err(io_err)?;
    file.write_all(to_write).map_err(io_err)?;
    if to_write.len() != bytes.len() {
        // The injected torn write doubles as the crash itself: the temp
        // file holds a prefix and the process "dies" before the rename.
        return Err(Error::InvalidStructure(
            "failpoint 'persist::save::write' injected torn write".into(),
        ));
    }
    crate::fail_point!("persist::save::sync");
    // fsync the payload before the rename: rename-before-data-reaches-disk
    // is exactly the reordering that turns a crash into a corrupt index.
    file.sync_all().map_err(io_err)?;
    drop(file);
    apply_torn_injection(tmp)?;
    crate::fail_point!("persist::save::rename");
    std::fs::rename(tmp, path).map_err(io_err)?;
    // fsync the directory so the rename (the commit point) is durable too.
    let dirf = std::fs::File::open(dir).map_err(io_err)?;
    dirf.sync_all().map_err(io_err)?;
    Ok(())
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, fsync, atomic rename, directory fsync. On any error the
/// temp file is removed (best-effort) and the previous `path` contents —
/// if any — are untouched.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let file_name = path.file_name().ok_or_else(|| Error::InvalidConfig {
        param: "path",
        reason: format!("index path {} has no file name", path.display()),
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    // Same directory as the target: rename(2) is only atomic within a
    // filesystem, and a temp file elsewhere could cross a mount boundary.
    let tmp = dir.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let result = write_atomic_steps(&dir, &tmp, path, bytes);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// v2 reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one section payload. Every read reports
/// the owning section on failure, so a truncated inner array surfaces as
/// `CorruptIndex { section: "h12", .. }` rather than a generic error.
struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        SectionReader { bytes, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            corrupt(
                self.section,
                format!(
                    "payload truncated: needed {n} bytes at offset {}, payload is {} bytes",
                    self.pos,
                    self.bytes.len()
                ),
            )
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(le_u64(self.take(8)?))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes({
            let mut a = [0u8; 8];
            a.copy_from_slice(self.take(8)?);
            a
        }))
    }

    /// Remaining unread payload bytes.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Validates a length prefix of `len` 8-byte elements against the
    /// remaining payload *before* any allocation.
    fn check_len(&self, len: u64) -> Result<()> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| corrupt(self.section, format!("corrupt length prefix {len}")))?;
        if bytes > self.remaining() as u64 {
            return Err(corrupt(
                self.section,
                format!(
                    "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                    self.remaining()
                ),
            ));
        }
        Ok(())
    }

    fn usize_array(&mut self) -> Result<Vec<usize>> {
        let len = self.u64()?;
        self.check_len(len)?;
        let len = checked_usize(len, "array length").map_err(wrap(self.section))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(checked_usize(self.u64()?, "array element").map_err(wrap(self.section))?);
        }
        Ok(out)
    }

    fn f64_array(&mut self) -> Result<Vec<f64>> {
        let len = self.u64()?;
        self.check_len(len)?;
        let len = checked_usize(len, "array length").map_err(wrap(self.section))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Rejects trailing garbage — a payload longer than its content
    /// means the frame length lies about the structure inside it.
    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(
                self.section,
                format!("{} unconsumed bytes at end of payload", self.bytes.len() - self.pos),
            ));
        }
        Ok(())
    }
}

/// Verifies the trailer and section framing of a v2 image and returns
/// the ten payload slices in [`SECTIONS`] order. Checksums (whole-file,
/// then per-section) are validated here, before any payload parsing.
fn v2_frames(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    let total = bytes.len();
    if total < MAGIC_V2.len() + TRAILER_LEN {
        return Err(corrupt(
            "trailer",
            format!("file too short ({total} bytes) to hold magic and trailer"),
        ));
    }
    let trailer_off = total - TRAILER_LEN;
    let trailer = &bytes[trailer_off..];
    if &trailer[..8] != TRAILER_MAGIC {
        return Err(corrupt("trailer", "trailer magic missing (torn or truncated write)"));
    }
    let stored_len = le_u64(&trailer[12..20]);
    if stored_len != total as u64 {
        return Err(corrupt(
            "trailer",
            format!("trailer records a {stored_len}-byte file, actual size is {total}"),
        ));
    }
    let stored_crc = le_u32(&trailer[8..12]);
    let actual_crc = crate::crc32::crc32(&bytes[..trailer_off]);
    if stored_crc != actual_crc {
        return Err(corrupt(
            "trailer",
            format!(
                "whole-file checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        ));
    }

    let mut pos = MAGIC_V2.len();
    let mut frames = Vec::with_capacity(SECTIONS.len());
    for (tag, name) in SECTIONS {
        let hdr_end = pos + 12;
        if hdr_end > trailer_off {
            return Err(corrupt(name, "section header truncated"));
        }
        let found = &bytes[pos..pos + 4];
        if found != tag.as_slice() {
            return Err(corrupt(
                name,
                format!(
                    "section tag mismatch: expected {:?}, found {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(found)
                ),
            ));
        }
        let len = checked_usize(le_u64(&bytes[pos + 4..pos + 12]), "section length")
            .map_err(wrap(name))?;
        let bounds = hdr_end
            .checked_add(len)
            .and_then(|payload_end| {
                payload_end.checked_add(4).map(|crc_end| (payload_end, crc_end))
            })
            .filter(|&(_, crc_end)| crc_end <= trailer_off);
        let Some((payload_end, crc_end)) = bounds else {
            return Err(corrupt(name, format!("section length {len} exceeds file bounds")));
        };
        let payload = &bytes[hdr_end..payload_end];
        let stored = le_u32(&bytes[payload_end..crc_end]);
        let actual = crate::crc32::crc32(payload);
        if stored != actual {
            return Err(corrupt(
                name,
                format!(
                    "section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        frames.push(payload);
        pos = crc_end;
    }
    if pos != trailer_off {
        return Err(corrupt(
            "trailer",
            format!("{} unexpected bytes between sections and trailer", trailer_off - pos),
        ));
    }
    Ok(frames)
}

fn parse_meta(payload: &[u8]) -> Result<(usize, usize, f64)> {
    let mut r = SectionReader::new(payload, "meta");
    let n1 = checked_usize(r.u64()?, "spoke count n1").map_err(wrap("meta"))?;
    let n2 = checked_usize(r.u64()?, "hub count n2").map_err(wrap("meta"))?;
    let c = r.f64()?;
    r.finish()?;
    if !(c > 0.0 && c < 1.0) {
        return Err(corrupt("meta", format!("restart probability {c} outside (0, 1)")));
    }
    Ok((n1, n2, c))
}

/// Raw `u64` payload (PERM/BSIZ/DEGS): length must be a multiple of 8.
fn parse_raw_u64s(payload: &[u8], section: &'static str) -> Result<Vec<usize>> {
    if !payload.len().is_multiple_of(8) {
        return Err(corrupt(
            section,
            format!("payload length {} is not a multiple of 8", payload.len()),
        ));
    }
    let mut out = Vec::with_capacity(payload.len() / 8);
    for chunk in payload.chunks_exact(8) {
        out.push(checked_usize(le_u64(chunk), "array element").map_err(wrap(section))?);
    }
    Ok(out)
}

/// Raw matrix payload: `(nrows, ncols, indptr, indices, values)` before
/// the structural audit runs.
type MatrixParts = (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>);

/// Parses a matrix payload into its raw parts; the caller runs the
/// structural audit via `try_from_parts`.
fn parse_matrix_parts(payload: &[u8], section: &'static str) -> Result<MatrixParts> {
    let mut r = SectionReader::new(payload, section);
    let nrows = checked_usize(r.u64()?, "matrix row count").map_err(wrap(section))?;
    let ncols = checked_usize(r.u64()?, "matrix column count").map_err(wrap(section))?;
    let indptr = r.usize_array()?;
    let indices = r.usize_array()?;
    let values = r.f64_array()?;
    r.finish()?;
    Ok((nrows, ncols, indptr, indices, values))
}

fn parse_csc(payload: &[u8], section: &'static str) -> Result<CscMatrix> {
    let (nrows, ncols, indptr, indices, values) = parse_matrix_parts(payload, section)?;
    // Trust boundary: run the full invariant audit (structure and
    // finiteness), not just shape checks — a checksum-valid payload can
    // still have been *written* with NaN/∞ or broken structure.
    CscMatrix::try_from_parts(nrows, ncols, indptr, indices, values).map_err(wrap(section))
}

fn parse_csr(payload: &[u8], section: &'static str) -> Result<CsrMatrix> {
    let (nrows, ncols, indptr, indices, values) = parse_matrix_parts(payload, section)?;
    // Trust boundary: full audit, as in `parse_csc`.
    CsrMatrix::try_from_parts(nrows, ncols, indptr, indices, values).map_err(wrap(section))
}

/// Cross-validates partition dimensions and assembles the index. Shared
/// by the v1 and v2 readers so both enforce identical consistency rules.
#[allow(clippy::too_many_arguments)]
fn assemble(
    n1: usize,
    n2: usize,
    c: f64,
    perm: Permutation,
    block_sizes: Vec<usize>,
    degrees: Vec<usize>,
    spokes: SpokeFactors,
    l2_inv: CscMatrix,
    u2_inv: CscMatrix,
    h12: CsrMatrix,
    h21: CsrMatrix,
) -> Result<Bear> {
    // The sum is checked: corrupt headers near usize::MAX must fail
    // typed, not overflow (panic in debug, wrap to a bogus `n` in
    // release).
    let n = n1
        .checked_add(n2)
        .ok_or_else(|| corrupt("meta", format!("n1 {n1} + n2 {n2} overflows")))?;
    if perm.len() != n
        || degrees.len() != n
        || block_sizes.iter().sum::<usize>() != n1
        || spokes.dim() != n1
        || l2_inv.nrows() != n2
        || u2_inv.nrows() != n2
        || h12.nrows() != n1
        || h12.ncols() != n2
        || h21.nrows() != n2
        || h21.ncols() != n1
    {
        return Err(corrupt("meta", "inconsistent index dimensions"));
    }
    Ok(Bear {
        spokes,
        l2_inv,
        u2_inv,
        h12,
        h21,
        perm,
        n1,
        n2,
        c,
        block_sizes,
        degrees,
        // Preprocessing happened in the process that wrote the index;
        // a loaded index reports zero stage timings.
        timings: crate::stats::StageTimings::default(),
        topk_bounds: std::sync::OnceLock::new(),
    })
}

fn load_v2(bytes: &[u8]) -> Result<Bear> {
    let frames = v2_frames(bytes)?;
    let [meta, perm_b, bsiz_b, degs_b, l1_b, u1_b, l2_b, u2_b, h12_b, h21_b]: [&[u8]; 10] =
        frames.try_into().map_err(|_| corrupt("header", "wrong section count"))?;
    let (n1, n2, c) = parse_meta(meta)?;
    let perm =
        Permutation::try_from_parts(parse_raw_u64s(perm_b, "perm")?).map_err(wrap("perm"))?;
    let block_sizes = parse_raw_u64s(bsiz_b, "block_sizes")?;
    let degrees = parse_raw_u64s(degs_b, "degrees")?;
    let l1_inv = parse_csc(l1_b, "l1_inv")?;
    let u1_inv = parse_csc(u1_b, "u1_inv")?;
    let l2_inv = parse_csc(l2_b, "l2_inv")?;
    let u2_inv = parse_csc(u2_b, "u2_inv")?;
    let h12 = parse_csr(h12_b, "h12")?;
    let h21 = parse_csr(h21_b, "h21")?;
    assemble(
        n1,
        n2,
        c,
        perm,
        block_sizes,
        degrees,
        SpokeFactors::Resident { l1_inv, u1_inv },
        l2_inv,
        u2_inv,
        h12,
        h21,
    )
}

// ---------------------------------------------------------------------------
// v3 reader
// ---------------------------------------------------------------------------

/// Parsed resident pieces of a v3 image: everything except the spoke
/// factors, plus the validated segment directory and section inventory.
struct V3Resident {
    n1: usize,
    n2: usize,
    c: f64,
    perm: Permutation,
    block_sizes: Vec<usize>,
    degrees: Vec<usize>,
    l2_inv: CscMatrix,
    u2_inv: CscMatrix,
    h12: CsrMatrix,
    h21: CsrMatrix,
    dir: Vec<SegmentMeta>,
    sections: Vec<SectionInfo>,
}

/// Reads and validates the v3 trailer, returning
/// `(resident_off, trailer_off, resident-region crc)`.
fn read_v3_geometry(src: &FileSource, total: u64) -> Result<(u64, u64, u32)> {
    let min = (MAGIC_V3.len() + TRAILER_LEN_V3) as u64;
    if total < min {
        return Err(corrupt(
            "trailer",
            format!("file too short ({total} bytes) to hold magic and trailer"),
        ));
    }
    let trailer_off = total - TRAILER_LEN_V3 as u64;
    let mut trailer = [0u8; TRAILER_LEN_V3];
    src.read_at(trailer_off, &mut trailer).map_err(retag("trailer"))?;
    if &trailer[..8] != TRAILER_MAGIC_V3 {
        return Err(corrupt("trailer", "trailer magic missing (torn or truncated write)"));
    }
    let stored_crc = le_u32(&trailer[8..12]);
    let resident_off = le_u64(&trailer[12..20]);
    let stored_len = le_u64(&trailer[20..28]);
    if stored_len != total {
        return Err(corrupt(
            "trailer",
            format!("trailer records a {stored_len}-byte file, actual size is {total}"),
        ));
    }
    if resident_off < MAGIC_V3.len() as u64 || resident_off > trailer_off {
        return Err(corrupt(
            "trailer",
            format!("resident region offset {resident_off} outside file bounds"),
        ));
    }
    Ok((resident_off, trailer_off, stored_crc))
}

/// Verifies the framing of a v3 resident region (whose CRC has already
/// been checked against the trailer) and returns the nine payload
/// slices in [`SECTIONS_V3`] order.
fn v3_region_frames(region: &[u8]) -> Result<Vec<&[u8]>> {
    let mut pos = 0usize;
    let mut frames = Vec::with_capacity(SECTIONS_V3.len());
    for (tag, name) in SECTIONS_V3 {
        let hdr_end = pos + 12;
        if hdr_end > region.len() {
            return Err(corrupt(name, "section header truncated"));
        }
        let found = &region[pos..pos + 4];
        if found != tag.as_slice() {
            return Err(corrupt(
                name,
                format!(
                    "section tag mismatch: expected {:?}, found {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(found)
                ),
            ));
        }
        let len = checked_usize(le_u64(&region[pos + 4..pos + 12]), "section length")
            .map_err(wrap(name))?;
        let bounds = hdr_end
            .checked_add(len)
            .and_then(|payload_end| {
                payload_end.checked_add(4).map(|crc_end| (payload_end, crc_end))
            })
            .filter(|&(_, crc_end)| crc_end <= region.len());
        let Some((payload_end, crc_end)) = bounds else {
            return Err(corrupt(name, format!("section length {len} exceeds region bounds")));
        };
        let payload = &region[hdr_end..payload_end];
        let stored = le_u32(&region[payload_end..crc_end]);
        let actual = crate::crc32::crc32(payload);
        if stored != actual {
            return Err(corrupt(
                name,
                format!(
                    "section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        frames.push(payload);
        pos = crc_end;
    }
    if pos != region.len() {
        return Err(corrupt(
            "trailer",
            format!("{} unexpected bytes after resident sections", region.len() - pos),
        ));
    }
    Ok(frames)
}

/// Reads and fully parses the resident region of a v3 image. The region
/// allocation is charged against `budget` — the hub/Schur matrices must
/// be resident for every query, so an index whose *resident* part
/// exceeds the budget is a typed [`Error::OutOfBudget`], while the spoke
/// segments stay on disk regardless of their size.
fn read_v3_resident(src: &FileSource, total: u64, budget: &MemBudget) -> Result<V3Resident> {
    let (resident_off, trailer_off, stored_crc) = read_v3_geometry(src, total)?;
    let region_len =
        checked_usize(trailer_off - resident_off, "resident region length").map_err(wrap("trailer"))?;
    budget.check(region_len)?;
    let mut region = vec![0u8; region_len];
    src.read_at(resident_off, &mut region).map_err(retag("trailer"))?;
    let actual_crc = crate::crc32::crc32(&region);
    if stored_crc != actual_crc {
        return Err(corrupt(
            "trailer",
            format!(
                "resident region checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        ));
    }
    let frames = v3_region_frames(&region)?;
    let sections = frames
        .iter()
        .zip(SECTIONS_V3.iter())
        .map(|(payload, (tag, _))| SectionInfo {
            tag: String::from_utf8_lossy(*tag).into_owned(),
            len: payload.len() as u64,
        })
        .collect();
    let [meta, perm_b, bsiz_b, degs_b, l2_b, u2_b, h12_b, h21_b, sdir_b]: [&[u8]; 9] =
        frames.try_into().map_err(|_| corrupt("header", "wrong section count"))?;
    let (n1, n2, c) = parse_meta(meta)?;
    let perm =
        Permutation::try_from_parts(parse_raw_u64s(perm_b, "perm")?).map_err(wrap("perm"))?;
    let block_sizes = parse_raw_u64s(bsiz_b, "block_sizes")?;
    let degrees = parse_raw_u64s(degs_b, "degrees")?;
    let l2_inv = parse_csc(l2_b, "l2_inv")?;
    let u2_inv = parse_csc(u2_b, "u2_inv")?;
    let h12 = parse_csr(h12_b, "h12")?;
    let h21 = parse_csr(h21_b, "h21")?;
    let dir = parse_sdir(sdir_b)?;
    validate_v3_dir(&dir, block_sizes.len(), resident_off)?;
    Ok(V3Resident { n1, n2, c, perm, block_sizes, degrees, l2_inv, u2_inv, h12, h21, dir, sections })
}

/// Streams segment `b` through its CRC in bounded chunks, verifying the
/// frame header and both checksum copies without materializing the
/// payload. Load-time truncation and bit rot in any shard surface here
/// as typed `CorruptIndex { section: "spoke_segment", .. }`, so
/// [`Bear::load_or_quarantine`] catches them before serving.
fn verify_segment_stream(src: &FileSource, b: usize, meta: &SegmentMeta) -> Result<()> {
    let mut hdr = [0u8; 12];
    src.read_at(meta.offset, &mut hdr).map_err(shard_err(b))?;
    if &hdr[..4] != SEGMENT_TAG {
        return Err(corrupt_shard(b, "segment tag missing (directory points at garbage)"));
    }
    let payload_len = le_u64(&hdr[4..12]);
    let expect = meta.frame_len - SEGMENT_FRAME_OVERHEAD as u64;
    if payload_len != expect {
        return Err(corrupt_shard(
            b,
            format!("frame length {payload_len} disagrees with directory ({expect})"),
        ));
    }
    let mut crc = crate::crc32::Crc32::new();
    let mut remaining = payload_len;
    let mut off = meta.offset + 12;
    let cap = usize::try_from(remaining.min(VERIFY_CHUNK as u64)).unwrap_or(VERIFY_CHUNK);
    let mut buf = vec![0u8; cap];
    while remaining > 0 {
        let n = buf.len().min(usize::try_from(remaining).unwrap_or(buf.len()));
        src.read_at(off, &mut buf[..n]).map_err(shard_err(b))?;
        crc.update(&buf[..n]);
        off += n as u64;
        remaining -= n as u64;
    }
    let mut crc4 = [0u8; 4];
    src.read_at(off, &mut crc4).map_err(shard_err(b))?;
    let stored = u32::from_le_bytes(crc4);
    let actual = crc.finish();
    if stored != actual || stored != meta.crc {
        return Err(corrupt_shard(
            b,
            format!(
                "segment checksum mismatch: frame {stored:#010x}, directory {:#010x}, computed {actual:#010x}",
                meta.crc
            ),
        ));
    }
    Ok(())
}

fn load_v3(file: std::fs::File, opts: &LoadOptions) -> Result<Bear> {
    let total = file.metadata().map_err(io_err)?.len();
    let src = FileSource::new(file);
    let res = read_v3_resident(&src, total, &opts.budget)?;
    // Eager integrity sweep: every segment's CRC is verified (in bounded
    // chunks) before the index serves a single query, so torn writes and
    // bit rot fail the *load* — quarantine-able — instead of a query
    // hours later.
    for (b, meta) in res.dir.iter().enumerate() {
        verify_segment_stream(&src, b, meta)?;
    }
    let resident_bytes = res.l2_inv.memory_bytes()
        + res.u2_inv.memory_bytes()
        + res.h12.memory_bytes()
        + res.h21.memory_bytes();
    opts.budget.check(resident_bytes)?;
    // The spoke factors page under whatever budget the resident part
    // leaves over.
    let pager_budget = opts.budget.limit().map(|l| l.saturating_sub(resident_bytes));
    let pager = BlockPager::new(Box::new(src), res.dir, &res.block_sizes, pager_budget)?;
    let mut spokes = SpokeFactors::Paged { pager };
    if opts.resident {
        let (l1_inv, u1_inv) = spokes.to_whole()?;
        opts.budget
            .check(resident_bytes + l1_inv.memory_bytes() + u1_inv.memory_bytes())?;
        spokes = SpokeFactors::Resident { l1_inv, u1_inv };
    }
    assemble(
        res.n1,
        res.n2,
        res.c,
        res.perm,
        res.block_sizes,
        res.degrees,
        spokes,
        res.l2_inv,
        res.u2_inv,
        res.h12,
        res.h21,
    )
}

// ---------------------------------------------------------------------------
// v1 reader/writer (legacy format, kept for compatibility)
// ---------------------------------------------------------------------------

fn write_usize_slice<W: Write>(w: &mut W, data: &[usize]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&(v as u64).to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

fn write_f64_slice<W: Write>(w: &mut W, data: &[f64]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// A reader that knows how many payload bytes can still legally follow,
/// so length prefixes read from untrusted files are validated *before*
/// any allocation. A corrupt or truncated index therefore fails with a
/// structured error instead of attempting a huge `Vec::with_capacity`.
struct BoundedReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> BoundedReader<R> {
    fn new(inner: R, remaining: u64) -> Self {
        BoundedReader { inner, remaining }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        if buf.len() as u64 > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "truncated index: needed {} bytes, {} remain",
                buf.len(),
                self.remaining
            )));
        }
        self.inner.read_exact(buf).map_err(io_err)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    /// Validates that a length prefix of `len` elements (8 bytes each)
    /// fits in the remaining input.
    fn check_len(&self, len: u64) -> Result<()> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| Error::InvalidStructure(format!("corrupt length prefix {len}")))?;
        if bytes > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                self.remaining
            )));
        }
        Ok(())
    }
}

fn read_u64<R: Read>(r: &mut BoundedReader<R>) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<usize>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    for _ in 0..len {
        out.push(checked_usize(read_u64(r)?, "array element")?);
    }
    Ok(out)
}

fn read_f64_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<f64>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

fn read_csc<R: Read>(r: &mut BoundedReader<R>) -> Result<CscMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    // Trust boundary: run the full invariant audit, as in `parse_csc`.
    CscMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

fn read_csr<R: Read>(r: &mut BoundedReader<R>) -> Result<CsrMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    CsrMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

/// Parses a v1 image (magic already verified by the dispatcher).
fn parse_v1(bytes: &[u8]) -> Result<Bear> {
    let body = &bytes[MAGIC_V1.len()..];
    let mut r = BoundedReader::new(body, body.len() as u64);
    let n1 = checked_usize(read_u64(&mut r)?, "spoke count n1")?;
    let n2 = checked_usize(read_u64(&mut r)?, "hub count n2")?;
    let mut cbuf = [0u8; 8];
    r.read_exact(&mut cbuf)?;
    let c = f64::from_le_bytes(cbuf);
    if !(c > 0.0 && c < 1.0) {
        return Err(Error::InvalidStructure(format!("corrupt restart probability {c}")));
    }
    let perm = Permutation::try_from_parts(read_usize_slice(&mut r)?)?;
    let block_sizes = read_usize_slice(&mut r)?;
    let degrees = read_usize_slice(&mut r)?;
    let l1_inv = read_csc(&mut r)?;
    let u1_inv = read_csc(&mut r)?;
    let l2_inv = read_csc(&mut r)?;
    let u2_inv = read_csc(&mut r)?;
    let h12 = read_csr(&mut r)?;
    let h21 = read_csr(&mut r)?;
    assemble(
        n1,
        n2,
        c,
        perm,
        block_sizes,
        degrees,
        SpokeFactors::Resident { l1_inv, u1_inv },
        l2_inv,
        u2_inv,
        h12,
        h21,
    )
}

fn load_v1(bytes: &[u8]) -> Result<Bear> {
    // v1 has no checksums, so every failure here is structural; wrap it
    // in the corruption taxonomy with the format version as the section.
    parse_v1(bytes).map_err(wrap("v1"))
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Options controlling how [`Bear::load_with`] materializes an index.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Memory budget. v1/v2 images are fully resident and must fit in
    /// their entirety (typed [`Error::OutOfBudget`] otherwise); a v3
    /// image must fit only its *resident* part (hub/Schur matrices) —
    /// the spoke factors page on demand under whatever budget remains.
    pub budget: MemBudget,
    /// Force a v3 image fully resident: fetch every segment, rebuild the
    /// whole factors, and never touch the pager on the query path.
    /// Ignored for v1/v2 (always resident).
    pub resident: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { budget: MemBudget::unlimited(), resident: false }
    }
}

impl Bear {
    /// Writes the precomputed index to `path` in the v2 format,
    /// crash-safely: the image is built in memory, written to a hidden
    /// temp file in the target directory, fsynced, atomically renamed
    /// over `path`, and the directory is fsynced. A crash (or error) at
    /// any point leaves the previous contents of `path` intact.
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_v2_bytes()?)
    }

    /// Writes the index in the legacy v1 layout (`BEARIDX1`: bare
    /// header + length-prefixed arrays, no checksums). Kept so the
    /// compatibility suite can prove current binaries still read files
    /// written by pre-v2 releases; new code should use [`Bear::save`].
    pub fn save_v1(&self, path: &Path) -> Result<()> {
        let (l1_inv, u1_inv) = self.spokes.to_whole()?;
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        push_u64(&mut out, self.n1 as u64);
        push_u64(&mut out, self.n2 as u64);
        out.extend_from_slice(&self.c.to_le_bytes());
        write_usize_slice(&mut out, self.perm.as_new_to_old())?;
        write_usize_slice(&mut out, &self.block_sizes)?;
        write_usize_slice(&mut out, &self.degrees)?;
        for m in [&l1_inv, &u1_inv, &self.l2_inv, &self.u2_inv] {
            push_u64(&mut out, m.nrows() as u64);
            push_u64(&mut out, m.ncols() as u64);
            write_usize_slice(&mut out, m.indptr())?;
            write_usize_slice(&mut out, m.indices())?;
            write_f64_slice(&mut out, m.values())?;
        }
        for m in [&self.h12, &self.h21] {
            push_u64(&mut out, m.nrows() as u64);
            push_u64(&mut out, m.ncols() as u64);
            write_usize_slice(&mut out, m.indptr())?;
            write_usize_slice(&mut out, m.indices())?;
            write_f64_slice(&mut out, m.values())?;
        }
        write_atomic(path, &out)
    }

    /// Reads a precomputed index written by [`Bear::save`] (v2),
    /// [`Bear::save_v3`] (sharded v3, loaded paged with an unlimited
    /// budget), or a pre-v2 binary (v1). Shorthand for
    /// [`Bear::load_with`] with default [`LoadOptions`].
    ///
    /// The file is a trust boundary. Checksums (whole-file or
    /// per-segment plus resident-region for v3) are verified before any
    /// parsing; every matrix and the node ordering are re-validated via
    /// the `try_from_parts` constructors (sorted, in-bounds,
    /// duplicate-free indices; monotone `indptr`; bijective permutation;
    /// finite values), and the partition dimensions are cross-checked.
    /// Any failure — torn write, bit rot, or a corrupt-but-length-valid
    /// payload — returns [`Error::CorruptIndex`] naming the section,
    /// never a panic and never an index that answers with garbage (see
    /// `crates/core/tests/crash_injection.rs`).
    pub fn load(path: &Path) -> Result<Self> {
        Self::load_with(path, &LoadOptions::default())
    }

    /// Like [`Bear::load`], with explicit residency control: `opts.budget`
    /// caps memory (v3 spoke factors page on demand under it; v1/v2 must
    /// fit entirely), and `opts.resident` forces a v3 image fully into
    /// memory.
    pub fn load_with(path: &Path, opts: &LoadOptions) -> Result<Self> {
        crate::fail_point!("persist::load");
        let mut file = std::fs::File::open(path).map_err(io_err)?;
        let mut magic = [0u8; 8];
        if let Err(e) = file.read_exact(&mut magic) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt("header", "file too short to hold a magic number")
            } else {
                io_err(e)
            });
        }
        if &magic == MAGIC_V3 {
            return load_v3(file, opts);
        }
        drop(file);
        let bytes = std::fs::read(path).map_err(io_err)?;
        let bear = match &magic {
            m if m == MAGIC_V2 => load_v2(&bytes)?,
            m if m == MAGIC_V1 => load_v1(&bytes)?,
            m => return Err(corrupt("header", format!("not a BEAR index file (magic {m:?})"))),
        };
        // v1/v2 are fully resident: the whole index charges the budget.
        opts.budget.check(bear.memory_bytes())?;
        Ok(bear)
    }

    /// Like [`Bear::load`], but an artifact that fails integrity or
    /// structural validation is renamed to `<path>.corrupt` so it cannot
    /// be retried into serving; the returned error's detail records the
    /// quarantine destination. I/O errors (e.g. the file is simply
    /// missing) and budget overruns are *not* quarantined — only typed
    /// corruption is.
    pub fn load_or_quarantine(path: &Path) -> Result<Self> {
        Self::load_or_quarantine_with(path, &LoadOptions::default())
    }

    /// [`Bear::load_or_quarantine`] with explicit [`LoadOptions`].
    pub fn load_or_quarantine_with(path: &Path, opts: &LoadOptions) -> Result<Self> {
        match Self::load_with(path, opts) {
            Err(Error::CorruptIndex { section, detail }) => {
                let mut q = path.as_os_str().to_os_string();
                q.push(".corrupt");
                let quarantined = PathBuf::from(q);
                let detail = match std::fs::rename(path, &quarantined) {
                    Ok(()) => format!("{detail}; quarantined to {}", quarantined.display()),
                    Err(e) => format!("{detail}; quarantine rename failed: {e}"),
                };
                Err(Error::CorruptIndex { section, detail })
            }
            other => other,
        }
    }
}

/// One framed section of a v2 index, as reported by [`verify_index`].
#[derive(Debug, Clone, PartialEq)]
pub struct SectionInfo {
    /// Four-character section tag (e.g. `META`, `L1IV`).
    pub tag: String,
    /// Payload length in bytes (framing overhead excluded).
    pub len: u64,
}

/// Result of a successful [`verify_index`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexReport {
    /// On-disk format version: 1 (`BEARIDX1`), 2 (`BEARIDX2`), or 3
    /// (`BEARIDX3`).
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Spoke count.
    pub n1: usize,
    /// Hub count.
    pub n2: usize,
    /// Restart probability.
    pub c: f64,
    /// Section inventory (empty for v1, which has no framing).
    pub sections: Vec<SectionInfo>,
    /// Spoke-block segments (v3 only; zero for v1/v2).
    pub segments: usize,
}

/// Fully verifies the index at `path` — checksums, framing, structural
/// invariants, dimension consistency — and reports what was found.
/// Errors are exactly those [`Bear::load`] would return; the file is
/// never modified. Shorthand for [`verify_index_with`] under an
/// unlimited budget.
pub fn verify_index(path: &Path) -> Result<IndexReport> {
    verify_index_with(path, &MemBudget::unlimited())
}

/// Like [`verify_index`], but with bounded peak allocation: v2 images
/// are verified with a chunked whole-file checksum and one section
/// resident at a time, v3 images with one spoke segment resident at a
/// time, and every transient allocation is charged against `budget`
/// first — so `bear verify-index` works on an index larger than RAM.
pub fn verify_index_with(path: &Path, budget: &MemBudget) -> Result<IndexReport> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let total = file.metadata().map_err(io_err)?.len();
    let src = FileSource::new(file);
    if total < 8 {
        return Err(corrupt(
            "header",
            format!("file too short ({total} bytes) to hold a magic number"),
        ));
    }
    let mut magic = [0u8; 8];
    src.read_at(0, &mut magic).map_err(retag("header"))?;
    match &magic {
        m if m == MAGIC_V3 => verify_v3(src, total, budget),
        m if m == MAGIC_V2 => verify_v2(src, total, budget),
        m if m == MAGIC_V1 => {
            // v1 has no framing to stream over; it needs the whole file.
            let len = checked_usize(total, "file length").map_err(wrap("header"))?;
            budget.check(len)?;
            let mut bytes = vec![0u8; len];
            src.read_at(0, &mut bytes).map_err(retag("header"))?;
            let bear = load_v1(&bytes)?;
            Ok(IndexReport {
                version: 1,
                file_len: total,
                n1: bear.n1,
                n2: bear.n2,
                c: bear.c,
                sections: Vec::new(),
                segments: 0,
            })
        }
        m => Err(corrupt("header", format!("not a BEAR index file (magic {m:?})"))),
    }
}

/// CRC32 of `[off, off + remaining)` computed in bounded chunks.
fn streamed_crc(
    src: &FileSource,
    mut off: u64,
    mut remaining: u64,
    section: &'static str,
) -> Result<u32> {
    let mut crc = crate::crc32::Crc32::new();
    let cap = usize::try_from(remaining.min(VERIFY_CHUNK as u64)).unwrap_or(VERIFY_CHUNK);
    let mut buf = vec![0u8; cap];
    while remaining > 0 {
        let n = buf.len().min(usize::try_from(remaining).unwrap_or(buf.len()));
        src.read_at(off, &mut buf[..n]).map_err(retag(section))?;
        crc.update(&buf[..n]);
        off += n as u64;
        remaining -= n as u64;
    }
    Ok(crc.finish())
}

/// Streaming v2 verification: chunked whole-file CRC, then each section
/// parsed (full structural audit) and dropped before the next is read;
/// peak allocation is the largest single section. Dimension
/// cross-checks replay [`assemble`]'s rules on the recorded shapes.
fn verify_v2(src: FileSource, total: u64, budget: &MemBudget) -> Result<IndexReport> {
    let min = (MAGIC_V2.len() + TRAILER_LEN) as u64;
    if total < min {
        return Err(corrupt(
            "trailer",
            format!("file too short ({total} bytes) to hold magic and trailer"),
        ));
    }
    let trailer_off = total - TRAILER_LEN as u64;
    let mut trailer = [0u8; TRAILER_LEN];
    src.read_at(trailer_off, &mut trailer).map_err(retag("trailer"))?;
    if &trailer[..8] != TRAILER_MAGIC {
        return Err(corrupt("trailer", "trailer magic missing (torn or truncated write)"));
    }
    let stored_len = le_u64(&trailer[12..20]);
    if stored_len != total {
        return Err(corrupt(
            "trailer",
            format!("trailer records a {stored_len}-byte file, actual size is {total}"),
        ));
    }
    let stored_crc = le_u32(&trailer[8..12]);
    let actual_crc = streamed_crc(&src, 0, trailer_off, "trailer")?;
    if stored_crc != actual_crc {
        return Err(corrupt(
            "trailer",
            format!(
                "whole-file checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        ));
    }

    let mut pos = MAGIC_V2.len() as u64;
    let mut sections = Vec::with_capacity(SECTIONS.len());
    let (mut n1, mut n2, mut c) = (0usize, 0usize, 0.0f64);
    let (mut perm_len, mut degrees_len, mut block_sum) = (0usize, 0usize, 0usize);
    // Shapes of l1_inv, u1_inv, l2_inv, u2_inv, h12, h21 in turn.
    let mut dims = [(0usize, 0usize); 6];
    for (i, &(tag, name)) in SECTIONS.iter().enumerate() {
        let hdr_end = pos
            .checked_add(12)
            .filter(|&e| e <= trailer_off)
            .ok_or_else(|| corrupt(name, "section header truncated"))?;
        let mut hdr = [0u8; 12];
        src.read_at(pos, &mut hdr).map_err(retag(name))?;
        if &hdr[..4] != tag.as_slice() {
            return Err(corrupt(
                name,
                format!(
                    "section tag mismatch: expected {:?}, found {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(&hdr[..4])
                ),
            ));
        }
        let len = le_u64(&hdr[4..12]);
        let bounds = hdr_end
            .checked_add(len)
            .and_then(|payload_end| {
                payload_end.checked_add(4).map(|crc_end| (payload_end, crc_end))
            })
            .filter(|&(_, crc_end)| crc_end <= trailer_off);
        let Some((payload_end, crc_end)) = bounds else {
            return Err(corrupt(name, format!("section length {len} exceeds file bounds")));
        };
        let len_us = checked_usize(len, "section length").map_err(wrap(name))?;
        budget.check(len_us)?;
        let mut payload = vec![0u8; len_us];
        src.read_at(hdr_end, &mut payload).map_err(retag(name))?;
        let mut crc4 = [0u8; 4];
        src.read_at(payload_end, &mut crc4).map_err(retag(name))?;
        let stored = u32::from_le_bytes(crc4);
        let actual = crate::crc32::crc32(&payload);
        if stored != actual {
            return Err(corrupt(
                name,
                format!(
                    "section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        match i {
            0 => (n1, n2, c) = parse_meta(&payload)?,
            1 => {
                perm_len = Permutation::try_from_parts(parse_raw_u64s(&payload, "perm")?)
                    .map_err(wrap("perm"))?
                    .len()
            }
            2 => block_sum = parse_raw_u64s(&payload, "block_sizes")?.iter().sum(),
            3 => degrees_len = parse_raw_u64s(&payload, "degrees")?.len(),
            4..=7 => {
                let m = parse_csc(&payload, name)?;
                dims[i - 4] = (m.nrows(), m.ncols());
            }
            _ => {
                let m = parse_csr(&payload, name)?;
                dims[i - 4] = (m.nrows(), m.ncols());
            }
        }
        sections.push(SectionInfo {
            tag: String::from_utf8_lossy(tag).into_owned(),
            len,
        });
        pos = crc_end;
    }
    if pos != trailer_off {
        return Err(corrupt(
            "trailer",
            format!("{} unexpected bytes between sections and trailer", trailer_off - pos),
        ));
    }
    let n = n1
        .checked_add(n2)
        .ok_or_else(|| corrupt("meta", format!("n1 {n1} + n2 {n2} overflows")))?;
    if perm_len != n
        || degrees_len != n
        || block_sum != n1
        || dims[0].0 != n1
        || dims[1].0 != n1
        || dims[2].0 != n2
        || dims[3].0 != n2
        || dims[4] != (n1, n2)
        || dims[5] != (n2, n1)
    {
        return Err(corrupt("meta", "inconsistent index dimensions"));
    }
    Ok(IndexReport { version: 2, file_len: total, n1, n2, c, sections, segments: 0 })
}

/// Streaming v3 verification: resident region parsed in full (it must
/// fit in memory to serve anyway), then each segment CRC-verified and
/// structurally decoded one at a time through a zero-budget pager so at
/// most one decoded block is resident.
fn verify_v3(src: FileSource, total: u64, budget: &MemBudget) -> Result<IndexReport> {
    let res = read_v3_resident(&src, total, budget)?;
    for (b, meta) in res.dir.iter().enumerate() {
        let frame = checked_usize(meta.frame_len, "segment frame length").map_err(wrap("segment_directory"))?;
        budget.check(frame.saturating_add(meta.resident_bytes()))?;
        verify_segment_stream(&src, b, meta)?;
    }
    let n = res
        .n1
        .checked_add(res.n2)
        .ok_or_else(|| corrupt("meta", format!("n1 {} + n2 {} overflows", res.n1, res.n2)))?;
    if res.perm.len() != n
        || res.degrees.len() != n
        || res.block_sizes.iter().sum::<usize>() != res.n1
        || res.l2_inv.nrows() != res.n2
        || res.u2_inv.nrows() != res.n2
        || res.h12.nrows() != res.n1
        || res.h12.ncols() != res.n2
        || res.h21.nrows() != res.n2
        || res.h21.ncols() != res.n1
    {
        return Err(corrupt("meta", "inconsistent index dimensions"));
    }
    let segments = res.dir.len();
    let sections = res.sections.clone();
    // Structural audit of every segment, one decoded block resident at a
    // time (budget zero: each fetch evicts the previous block).
    let pager = BlockPager::new(Box::new(src), res.dir, &res.block_sizes, Some(0))?;
    for b in 0..pager.num_blocks() {
        pager.fetch(b)?;
    }
    Ok(IndexReport {
        version: 3,
        file_len: total,
        n1: res.n1,
        n2: res.n2,
        c: res.c,
        sections,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    fn sample_graph() -> Graph {
        let mut edges = Vec::new();
        for v in 1..10 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        edges.push((3, 4));
        edges.push((4, 3));
        Graph::from_edges(10, &edges).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    /// Recomputes every section CRC and the trailer over a surgically
    /// edited image (payload bytes changed, lengths unchanged), so tests
    /// can reach the structural validators *beneath* the checksums.
    fn fix_checksums(bytes: &mut [u8]) {
        let trailer_off = bytes.len() - TRAILER_LEN;
        let mut pos = MAGIC_V2.len();
        while pos < trailer_off {
            let len = le_u64(&bytes[pos + 4..pos + 12]) as usize;
            let payload_end = pos + 12 + len;
            let crc = crate::crc32::crc32(&bytes[pos + 12..payload_end]);
            bytes[payload_end..payload_end + 4].copy_from_slice(&crc.to_le_bytes());
            pos = payload_end + 4;
        }
        let file_crc = crate::crc32::crc32(&bytes[..trailer_off]);
        bytes[trailer_off + 8..trailer_off + 12].copy_from_slice(&file_crc.to_le_bytes());
    }

    #[test]
    fn save_load_round_trip_preserves_queries() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_round_trip.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.num_nodes(), bear.num_nodes());
        assert_eq!(loaded.n_hubs(), bear.n_hubs());
        for seed in 0..10 {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn v2_round_trip_is_bit_identical() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let a = tmp("bear_persist_bitident_a.idx");
        let b = tmp("bear_persist_bitident_b.idx");
        bear.save(&a).unwrap();
        Bear::load(&a).unwrap().save(&b).unwrap();
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        assert_eq!(&ba[..8], MAGIC_V2);
        assert_eq!(ba, bb, "save -> load -> save must reproduce the image byte for byte");
    }

    #[test]
    fn v1_files_still_load() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v1_compat.idx");
        bear.save_v1(&path).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V1);
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for seed in 0..10 {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("bear_persist_garbage.idx");
        std::fs::write(&path, b"not an index at all").unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, Error::CorruptIndex { section: "header", .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn load_rejects_wrong_magic() {
        let path = tmp("bear_persist_magic.idx");
        std::fs::write(&path, b"WRONGMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, Error::CorruptIndex { section: "header", .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn load_rejects_truncated_file_without_huge_allocation() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_truncated.idx");
        bear.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncation anywhere in the file must produce a typed error.
        for keep in [0, 7, 12, full.len() / 4, full.len() / 2, full.len() - 3] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "truncated to {keep} bytes: unexpected error {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_load_rejects_corrupt_length_prefix() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_corrupt_len.idx");
        bear.save_v1(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The first v1 length prefix (the permutation's) sits right after
        // magic + n1 + n2 + c = 32 bytes. Blow it up to u64::MAX: a naive
        // `Vec::with_capacity` on it would abort the process, while the
        // bounded reader must reject it against the remaining file size.
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::CorruptIndex { section: "v1", .. }), "unexpected: {err}");
        assert!(format!("{err}").contains("length prefix"), "unexpected error: {err}");
    }

    #[test]
    fn v2_checksums_catch_a_single_flipped_bit() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_bitflip.idx");
        bear.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for byte in [9, full.len() / 3, full.len() - TRAILER_LEN + 9] {
            let mut bytes = full.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "bit flip at byte {byte}: unexpected error {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_rejects_structural_corruption_beneath_checksums() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_meta_corrupt.idx");
        bear.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // META payload starts after magic (8) + frame header (12); its
        // restart probability is the third u64 field. Set it to 2.0 and
        // re-fix every checksum: the CRCs now pass, so only the semantic
        // validator can catch it.
        let c_off = 8 + 12 + 16;
        bytes[c_off..c_off + 8].copy_from_slice(&2.0f64.to_le_bytes());
        fix_checksums(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::CorruptIndex { section: "meta", .. }), "unexpected: {err}");
    }

    #[test]
    fn load_or_quarantine_renames_corrupt_artifacts() {
        let path = tmp("bear_persist_quarantine.idx");
        let quarantined = tmp("bear_persist_quarantine.idx.corrupt");
        std::fs::remove_file(&quarantined).ok();
        std::fs::write(&path, b"definitely not an index").unwrap();
        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, Error::CorruptIndex { .. }), "unexpected: {err}");
        assert!(format!("{err}").contains("quarantined to"), "detail lacks destination: {err}");
        assert!(!path.exists(), "corrupt artifact left in place");
        assert!(quarantined.exists(), "quarantine file missing");
        std::fs::remove_file(&quarantined).ok();
    }

    #[test]
    fn load_or_quarantine_leaves_missing_files_alone() {
        let path = tmp("bear_persist_missing.idx");
        std::fs::remove_file(&path).ok();
        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure(_)), "unexpected: {err}");
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let dir = tmp("bear_persist_tmpdir");
        std::fs::create_dir_all(&dir).unwrap();
        bear.save(&dir.join("index.idx")).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "index.idx")
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        assert!(leftovers.is_empty(), "stray files after save: {leftovers:?}");
    }

    #[test]
    fn verify_index_reports_v2_sections() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_verify.idx");
        bear.save(&path).unwrap();
        let report = verify_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.version, 2);
        assert_eq!(report.n1 + report.n2, 10);
        assert!((report.c - 0.1).abs() < 1e-12);
        assert_eq!(report.sections.len(), SECTIONS.len());
        assert_eq!(report.sections[0].tag, "META");
        assert_eq!(report.sections[0].len, 24);
    }

    #[test]
    fn verify_index_reports_v1_without_sections() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_verify_v1.idx");
        bear.save_v1(&path).unwrap();
        let report = verify_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.version, 1);
        assert!(report.sections.is_empty());
    }

    #[test]
    fn save_load_preserves_approx_variant() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::approx(0.1, 1e-3)).unwrap();
        let path = tmp("bear_persist_approx.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bear.stats(), loaded.stats());
        assert_eq!(bear.query(2).unwrap(), loaded.query(2).unwrap());
    }

    /// Several spoke caves so the v3 image carries multiple segments.
    fn blocky_graph() -> Graph {
        let mut edges = Vec::new();
        for v in 1..6 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        for &(a, b) in &[(6, 7), (7, 8), (9, 10), (11, 12), (12, 13), (13, 11)] {
            edges.push((a, b));
            edges.push((b, a));
        }
        for v in [6, 9, 11] {
            edges.push((0, v));
            edges.push((v, 0));
        }
        Graph::from_edges(14, &edges).unwrap()
    }

    #[test]
    fn v3_round_trip_is_bit_identical() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let a = tmp("bear_persist_v3_bitident_a.idx");
        let b = tmp("bear_persist_v3_bitident_b.idx");
        bear.save_v3(&a).unwrap();
        Bear::load(&a).unwrap().save_v3(&b).unwrap();
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        assert_eq!(&ba[..8], MAGIC_V3);
        assert_eq!(ba, bb, "save_v3 -> load -> save_v3 must reproduce the image byte for byte");
    }

    #[test]
    fn v3_paged_answers_are_bit_identical_to_in_memory() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_paged.idx");
        bear.save_v3(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        let pager = loaded.spokes.pager().expect("v3 default load must page");
        // One byte of spoke budget: at most one block stays resident, so
        // every query pages blocks in and out mid-flight.
        pager.set_budget(Some(1)).unwrap();
        std::fs::remove_file(&path).ok();
        for seed in 0..loaded.num_nodes() {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
            assert_eq!(
                bear.query_top_k_pruned(seed, 4).unwrap(),
                loaded.query_top_k_pruned(seed, 4).unwrap()
            );
        }
        let stats = loaded.spokes.pager().unwrap().stats();
        assert!(stats.misses > 0, "tiny budget must force segment loads");
        assert!(stats.evictions > 0, "tiny budget must force evictions");
    }

    #[test]
    fn v3_resident_load_option_materializes_factors() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_resident.idx");
        bear.save_v3(&path).unwrap();
        let opts = LoadOptions { resident: true, ..LoadOptions::default() };
        let loaded = Bear::load_with(&path, &opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.spokes.pager().is_none(), "resident load must not page");
        for seed in 0..loaded.num_nodes() {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn v3_load_rejects_tiny_budget_typed() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_budget.idx");
        bear.save_v3(&path).unwrap();
        let opts = LoadOptions { budget: MemBudget::bytes(32), resident: false };
        let err = Bear::load_with(&path, &opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::OutOfBudget { .. }), "unexpected: {err}");
    }

    #[test]
    fn v3_corruption_is_typed_everywhere() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_corrupt.idx");
        bear.save_v3(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncation anywhere must be a typed load error, never a panic.
        for keep in [0, 7, 9, 20, full.len() / 4, full.len() / 2, full.len() - 5] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "truncated to {keep} bytes: unexpected error {err}"
            );
        }
        // So must a flipped bit anywhere (segments, resident region,
        // trailer).
        for byte in [10, 40, full.len() / 3, full.len() * 2 / 3, full.len() - 10] {
            let mut bytes = full.clone();
            bytes[byte] ^= 0x04;
            std::fs::write(&path, &bytes).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "bit flip at byte {byte}: unexpected error {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_segment_bitflip_names_the_shard() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_shard_flip.idx");
        bear.save_v3(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First segment payload starts after magic (8) + frame header
        // (12); flip a bit inside it.
        bytes[8 + 12 + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match &err {
            Error::CorruptIndex { section, detail } => {
                assert_eq!(*section, "spoke_segment");
                assert!(detail.contains("shard 0"), "detail must name the shard: {detail}");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn v3_load_or_quarantine_quarantines_corrupt_index() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_quarantine.idx");
        let quarantined = tmp("bear_persist_v3_quarantine.idx.corrupt");
        std::fs::remove_file(&quarantined).ok();
        bear.save_v3(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, Error::CorruptIndex { .. }), "unexpected: {err}");
        assert!(!path.exists(), "corrupt v3 artifact left in place");
        assert!(quarantined.exists(), "quarantine file missing");
        std::fs::remove_file(&quarantined).ok();
    }

    #[test]
    fn verify_index_reports_v3_segments() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_verify.idx");
        bear.save_v3(&path).unwrap();
        let report = verify_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.version, 3);
        assert_eq!(report.n1 + report.n2, 14);
        assert_eq!(report.segments, bear.block_sizes().len());
        assert_eq!(report.sections.len(), SECTIONS_V3.len());
        assert!((report.c - 0.1).abs() < 1e-12);
    }

    #[test]
    fn verify_index_streams_v3_within_a_bounded_budget() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v3_verify_budget.idx");
        bear.save_v3(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        // A budget below the full file size still verifies: the segment
        // sweep holds at most one decoded block at a time.
        let mut lo = 64usize;
        let mut ok_at = None;
        while lo <= file_len {
            if verify_index_with(&path, &MemBudget::bytes(lo)).is_ok() {
                ok_at = Some(lo);
                break;
            }
            lo *= 2;
        }
        let ok_at = ok_at.expect("no bounded budget verified the index");
        assert!(ok_at < file_len, "verification peak ({ok_at}) not below file size ({file_len})");
        // And a hopeless budget fails typed, not with an abort.
        let err = verify_index_with(&path, &MemBudget::bytes(16)).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::OutOfBudget { .. }), "unexpected: {err}");
    }

    #[test]
    fn verify_index_streams_v2_within_a_bounded_budget() {
        let g = blocky_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v2_verify_budget.idx");
        bear.save(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut lo = 64usize;
        let mut ok_at = None;
        while lo <= file_len {
            if verify_index_with(&path, &MemBudget::bytes(lo)).is_ok() {
                ok_at = Some(lo);
                break;
            }
            lo *= 2;
        }
        let ok_at = ok_at.expect("no bounded budget verified the index");
        assert!(ok_at < file_len, "v2 verification peak ({ok_at}) not below file size ({file_len})");
        let err = verify_index_with(&path, &MemBudget::bytes(16)).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::OutOfBudget { .. }), "unexpected: {err}");
    }
}
