//! Dynamic graph updates — the paper's stated future-work direction
//! ("extending BEAR to support frequently changing graphs", Section 6).
//!
//! Observation: BEAR's expensive precomputed state splits along the
//! spoke/hub boundary. An edge whose *source* is a hub only changes
//! column `u` of `H`, which lives entirely in `H₁₂` and `H₂₂` — so
//! `L₁⁻¹`/`U₁⁻¹` (the bulk of the index) survive unchanged, and only the
//! `n₂ × n₂` Schur complement must be refreshed and refactored:
//!
//! * update the stored `H₁₂` column and the shadow `H₂₂` column;
//! * recompute one column of `S` with a single block solve,
//!   `S[:,u] = H₂₂[:,u] − H₂₁ (U₁⁻¹ (L₁⁻¹ H₁₂[:,u]))`;
//! * LU-refactor `S` and re-invert its (small) factors.
//!
//! Edges sourced at spokes can change `H₁₁`'s block structure, so they
//! fall back to full preprocessing. [`DynamicBear::insert_edge`] reports
//! which path was taken.

use crate::paging::Factor;
use crate::precompute::{Bear, BearConfig};
use crate::rwr::{build_h, Normalization};
use bear_graph::Graph;
use bear_sparse::{CooMatrix, Error, Result, SparseLu};

/// Which update path an edge insertion took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Only the Schur complement was refreshed (hub-sourced edge).
    IncrementalHub,
    /// The whole index was rebuilt (spoke-sourced edge).
    FullRebuild,
}

/// Per-column `(row, value)` pairs of a sparse block.
type SparseColumns = Vec<Vec<(usize, f64)>>;

/// A BEAR index that supports edge insertions.
#[derive(Debug, Clone)]
pub struct DynamicBear {
    bear: Bear,
    config: BearConfig,
    /// Mutable out-adjacency (original node ids).
    out_edges: Vec<Vec<(usize, f64)>>,
    /// Shadow copies of the hub-column blocks of the reordered `H`,
    /// stored column-wise: `(reordered row, value)` pairs.
    h12_cols: SparseColumns,
    h22_cols: SparseColumns,
}

impl DynamicBear {
    /// Preprocesses `g` and materializes the update shadow state.
    pub fn new(g: &Graph, config: &BearConfig) -> Result<Self> {
        if config.rwr.normalization != Normalization::Row {
            return Err(Error::InvalidStructure(
                "DynamicBear supports row normalization only".into(),
            ));
        }
        let bear = Bear::new(g, config)?;
        let mut out_edges = vec![Vec::new(); g.num_nodes()];
        for (u, v, w) in g.edges() {
            out_edges[u].push((v, w));
        }
        let (h12_cols, h22_cols) = Self::shadow_columns(g, &bear, config)?;
        Ok(DynamicBear { bear, config: *config, out_edges, h12_cols, h22_cols })
    }

    fn shadow_columns(
        g: &Graph,
        bear: &Bear,
        config: &BearConfig,
    ) -> Result<(SparseColumns, SparseColumns)> {
        let (n1, n2) = (bear.n1, bear.n2);
        let h = bear.perm.permute_symmetric(&build_h(g, &config.rwr)?)?;
        let mut h12_cols = vec![Vec::new(); n2];
        let mut h22_cols = vec![Vec::new(); n2];
        for (r, c, v) in h.iter() {
            if c >= n1 {
                if r < n1 {
                    h12_cols[c - n1].push((r, v));
                } else {
                    h22_cols[c - n1].push((r - n1, v));
                }
            }
        }
        Ok((h12_cols, h22_cols))
    }

    /// The underlying (read-only) BEAR index.
    pub fn bear(&self) -> &Bear {
        &self.bear
    }

    /// RWR query (delegates to the current index).
    pub fn query(&self, seed: usize) -> Result<Vec<f64>> {
        self.bear.query(seed)
    }

    /// Inserts (or strengthens) the directed edge `u → v` with weight `w`
    /// and brings the index up to date. Returns the path taken.
    pub fn insert_edge(&mut self, u: usize, v: usize, w: f64) -> Result<UpdateKind> {
        let n = self.bear.num_nodes();
        if u >= n {
            return Err(Error::IndexOutOfBounds { index: u, bound: n });
        }
        if v >= n {
            return Err(Error::IndexOutOfBounds { index: v, bound: n });
        }
        if !(w.is_finite()) || w <= 0.0 {
            return Err(Error::InvalidStructure(format!("invalid edge weight {w}")));
        }

        // Apply to the adjacency (merge with an existing edge if present).
        match self.out_edges[u].iter_mut().find(|(t, _)| *t == v) {
            Some((_, weight)) => *weight += w,
            None => self.out_edges[u].push((v, w)),
        }
        // Update the undirected degree shadow (used by effective
        // importance); `v` gains `u` as a neighbor and vice versa unless
        // already adjacent. Conservatively recomputed on rebuild; for the
        // incremental path an exact recount is cheap enough:
        // (handled inside rebuild / recount below).

        let pu = self.bear.perm.new_of(u);
        if pu < self.bear.n1 {
            // Spoke-sourced edge: block structure of H₁₁ may change.
            self.rebuild()?;
            return Ok(UpdateKind::FullRebuild);
        }

        self.refresh_hub_column(u)?;
        self.recount_degrees();
        Ok(UpdateKind::IncrementalHub)
    }

    /// Rebuilds the graph from the adjacency shadow and re-runs full
    /// preprocessing.
    fn rebuild(&mut self) -> Result<()> {
        let g = self.current_graph()?;
        self.bear = Bear::new(&g, &self.config)?;
        let (h12, h22) = Self::shadow_columns(&g, &self.bear, &self.config)?;
        self.h12_cols = h12;
        self.h22_cols = h22;
        Ok(())
    }

    /// The graph as currently known to the index.
    pub fn current_graph(&self) -> Result<Graph> {
        let n = self.out_edges.len();
        let mut edges = Vec::new();
        for (u, outs) in self.out_edges.iter().enumerate() {
            for &(v, w) in outs {
                edges.push((u, v, w));
            }
        }
        Graph::from_weighted_edges(n, &edges)
    }

    /// Incremental path: recompute column `u` of `H`, refresh the stored
    /// `H₁₂`, refresh one column of `S`, and refactor `S`.
    fn refresh_hub_column(&mut self, u: usize) -> Result<()> {
        let (n1, n2) = (self.bear.n1, self.bear.n2);
        let c = self.bear.c;
        let cu = self.bear.perm.new_of(u) - n1;

        // New column pu of H from u's renormalized out-row:
        // H[x][u] = [x == u] − (1−c) Ã[u][x].
        let row_sum: f64 = self.out_edges[u].iter().map(|&(_, w)| w).sum();
        let mut h12_col: Vec<(usize, f64)> = Vec::new();
        let mut h22_col: Vec<(usize, f64)> = vec![(cu, 1.0)]; // identity diag
        if row_sum > 0.0 {
            for &(x, w) in &self.out_edges[u] {
                let val = -(1.0 - c) * w / row_sum;
                let px = self.bear.perm.new_of(x);
                if px < n1 {
                    h12_col.push((px, val));
                } else if px - n1 == cu {
                    // Self-loop folds into the diagonal entry.
                    h22_col[0].1 += val;
                } else {
                    h22_col.push((px - n1, val));
                }
            }
        }
        h12_col.sort_unstable_by_key(|&(r, _)| r);
        h22_col.sort_unstable_by_key(|&(r, _)| r);
        self.h12_cols[cu] = h12_col;
        self.h22_cols[cu] = h22_col;

        // Rebuild H₁₂ (stored CSR) from the columns.
        let mut coo12 = CooMatrix::new(n1, n2);
        for (col, entries) in self.h12_cols.iter().enumerate() {
            for &(r, v) in entries {
                coo12.push(r, col, v);
            }
        }
        self.bear.h12 = coo12.to_csr();

        // Refresh every column of S that depends on changed data. Only
        // column cu changed, but recomputing S entirely from the shadows
        // keeps the code auditable; the dominant cost is the refactor
        // anyway. S = H₂₂ − H₂₁ U₁⁻¹ L₁⁻¹ H₁₂ column by column.
        let mut s_coo = CooMatrix::new(n2, n2);
        for col in 0..n2 {
            let mut dense_col = vec![0.0f64; n1];
            for &(r, v) in &self.h12_cols[col] {
                dense_col[r] = v;
            }
            let t = self.bear.spokes.matvec(Factor::L1, &dense_col)?;
            let t = self.bear.spokes.matvec(Factor::U1, &t)?;
            let y = self.bear.h21.matvec(&t)?;
            let mut s_col = vec![0.0f64; n2];
            for &(r, v) in &self.h22_cols[col] {
                s_col[r] = v;
            }
            for (r, yv) in y.iter().enumerate() {
                s_col[r] -= yv;
            }
            for (r, v) in s_col.into_iter().enumerate() {
                if v != 0.0 {
                    s_coo.push(r, col, v);
                }
            }
        }
        let s_lu = SparseLu::factor(&s_coo.to_csr().to_csc())?;
        let (l2_inv, u2_inv) = s_lu.invert_factors()?;
        self.bear.l2_inv = l2_inv;
        self.bear.u2_inv = u2_inv;
        Ok(())
    }

    /// Recomputes the undirected-degree shadow used by effective
    /// importance.
    fn recount_degrees(&mut self) {
        if let Ok(g) = self.current_graph() {
            self.bear.degrees = g.undirected_degrees();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core_test_helpers::*;

    mod bear_core_test_helpers {
        use bear_graph::Graph;
        /// Star with extra cave so SlashBurn produces a clear hub.
        pub fn hubby_graph() -> Graph {
            let mut edges = Vec::new();
            for v in 1..12 {
                edges.push((0, v));
                edges.push((v, 0));
            }
            edges.push((3, 4));
            edges.push((4, 3));
            edges.push((7, 8));
            edges.push((8, 7));
            Graph::from_edges(12, &edges).unwrap()
        }
    }

    fn fresh_oracle(dynamic: &DynamicBear) -> Bear {
        let g = dynamic.current_graph().unwrap();
        Bear::new(&g, &BearConfig::exact(0.1)).unwrap()
    }

    #[test]
    fn hub_edge_insertion_is_incremental_and_exact() {
        let g = hubby_graph();
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.1)).unwrap();
        // Node 0 is the star center: must be a hub.
        let hub = 0;
        assert!(dynamic.bear().ordering().new_of(hub) >= dynamic.bear().n_spokes());
        let kind = dynamic.insert_edge(hub, 5, 2.0).unwrap();
        assert_eq!(kind, UpdateKind::IncrementalHub);
        // Scores must match a from-scratch preprocessing of the new graph.
        let oracle = fresh_oracle(&dynamic);
        for seed in 0..12 {
            let got = dynamic.query(seed).unwrap();
            let want = oracle.query(seed).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn spoke_edge_insertion_falls_back_to_rebuild() {
        let g = hubby_graph();
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.1)).unwrap();
        // Node 9 is a leaf of the star: a guaranteed spoke.
        let spoke = 9;
        assert!(dynamic.bear().ordering().new_of(spoke) < dynamic.bear().n_spokes());
        let kind = dynamic.insert_edge(spoke, 10, 1.0).unwrap();
        assert_eq!(kind, UpdateKind::FullRebuild);
        let oracle = fresh_oracle(&dynamic);
        for seed in [0, 9, 10] {
            let got = dynamic.query(seed).unwrap();
            let want = oracle.query(seed).unwrap();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn repeated_insertions_stay_consistent() {
        let g = hubby_graph();
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.1)).unwrap();
        dynamic.insert_edge(0, 3, 1.0).unwrap();
        dynamic.insert_edge(0, 3, 1.0).unwrap(); // strengthen same edge
        dynamic.insert_edge(5, 6, 1.0).unwrap(); // spoke -> rebuild
        dynamic.insert_edge(0, 6, 0.5).unwrap();
        let oracle = fresh_oracle(&dynamic);
        let got = dynamic.query(6).unwrap();
        let want = oracle.query(6).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_insertions_rejected() {
        let g = hubby_graph();
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.1)).unwrap();
        assert!(dynamic.insert_edge(99, 0, 1.0).is_err());
        assert!(dynamic.insert_edge(0, 99, 1.0).is_err());
        assert!(dynamic.insert_edge(0, 1, -1.0).is_err());
        assert!(dynamic.insert_edge(0, 1, f64::NAN).is_err());
    }

    #[test]
    fn effective_importance_tracks_degree_changes() {
        let g = hubby_graph();
        let mut dynamic = DynamicBear::new(&g, &BearConfig::exact(0.1)).unwrap();
        dynamic.insert_edge(0, 5, 1.0).unwrap(); // existing undirected pair
        let oracle = fresh_oracle(&dynamic);
        let got = dynamic.bear().query_effective_importance(5).unwrap();
        let want = oracle.query_effective_importance(5).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
