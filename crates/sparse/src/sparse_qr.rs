//! Sparse QR factorization by row-merging Givens rotations
//! (George & Heath, 1980).
//!
//! Rows of `A` are merged one at a time into a sparse upper-triangular
//! `R`; every elimination is a Givens rotation recorded in a replayable
//! log, so `Qᵀ b` costs one pass over the log instead of a dense `n × n`
//! product. Memory is `nnz(R) + 4·#rotations` — on graphs with strong
//! structure this is far below the dense `n²` of explicit-`Q` QR, while
//! on typical web-like graphs `R` fills in heavily, which is exactly the
//! scalability wall the BEAR paper observes for QR preprocessing
//! (Figure 2(b,c)).

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};

/// One recorded Givens rotation acting on workspace slots `p` and `q`:
/// `(w[p], w[q]) ← (c·w[p] + s·w[q], −s·w[p] + c·w[q])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GivensRotation {
    /// First slot (the row being rotated against).
    pub p: usize,
    /// Second slot (the incoming row).
    pub q: usize,
    /// Cosine.
    pub c: f64,
    /// Sine.
    pub s: f64,
}

/// Sparse QR factorization `A = Q R` with `Q` kept implicitly as a
/// rotation log.
#[derive(Debug, Clone)]
pub struct SparseQr {
    /// Upper-triangular factor (CSR, square).
    r: CsrMatrix,
    /// Rotation log in application order.
    rotations: Vec<GivensRotation>,
    /// `home[k]` = workspace slot where R's row `k` lives after all
    /// rotations (the original index of the last row merged into it).
    home: Vec<usize>,
    n: usize,
}

impl SparseQr {
    /// Factorizes a square sparse matrix.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(Error::DimensionMismatch {
                op: "sparse qr",
                lhs: (a.nrows(), a.ncols()),
                rhs: (n, n),
            });
        }
        // R rows as sparse (col, val) lists, col-sorted; `home` tracks the
        // workspace slot each R row is stored in.
        let mut r_rows: Vec<Option<Vec<(usize, f64)>>> = vec![None; n];
        let mut home = vec![usize::MAX; n];
        let mut rotations = Vec::new();

        let mut incoming: Vec<(usize, f64)> = Vec::new();
        let mut merged: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            let (cols, vals) = a.row(i);
            incoming.clear();
            incoming.extend(cols.iter().copied().zip(vals.iter().copied()));
            // Eliminate the incoming row's leading entries.
            loop {
                // Drop exact zeros that cancellation may have produced.
                while let Some(&(_, v)) = incoming.first() {
                    if v == 0.0 {
                        incoming.remove(0);
                    } else {
                        break;
                    }
                }
                let Some(&(k, a_k)) = incoming.first() else { break };
                match r_rows[k].take() {
                    None => {
                        // Column k has no R row yet: the incoming row
                        // becomes R row k and lives in slot i.
                        r_rows[k] = Some(incoming.clone());
                        home[k] = i;
                        incoming.clear();
                        break;
                    }
                    Some(r_row) => {
                        // Rotate against R row k to zero incoming[k].
                        let r_kk = r_row[0].1;
                        let hyp = (r_kk * r_kk + a_k * a_k).sqrt();
                        let (c, s) = (r_kk / hyp, a_k / hyp);
                        rotations.push(GivensRotation { p: home[k], q: i, c, s });
                        // new_r = c*r_row + s*incoming ; new_in = -s*r_row + c*incoming
                        merged.clear();
                        let mut new_in: Vec<(usize, f64)> = Vec::new();
                        let (mut x, mut y) = (0usize, 0usize);
                        while x < r_row.len() || y < incoming.len() {
                            let (col, rv, av) = match (r_row.get(x), incoming.get(y)) {
                                (Some(&(rc, rv)), Some(&(ac, av))) if rc == ac => {
                                    x += 1;
                                    y += 1;
                                    (rc, rv, av)
                                }
                                (Some(&(rc, rv)), Some(&(ac, _))) if rc < ac => {
                                    x += 1;
                                    (rc, rv, 0.0)
                                }
                                (Some(_), Some(&(ac, av))) => {
                                    y += 1;
                                    (ac, 0.0, av)
                                }
                                (Some(&(rc, rv)), None) => {
                                    x += 1;
                                    (rc, rv, 0.0)
                                }
                                (None, Some(&(ac, av))) => {
                                    y += 1;
                                    (ac, 0.0, av)
                                }
                                (None, None) => unreachable!(),
                            };
                            let nr = c * rv + s * av;
                            let ni = -s * rv + c * av;
                            if nr != 0.0 || col == k {
                                merged.push((col, nr));
                            }
                            if ni != 0.0 && col != k {
                                new_in.push((col, ni));
                            }
                        }
                        r_rows[k] = Some(std::mem::take(&mut merged));
                        incoming = new_in;
                    }
                }
            }
        }

        // Assemble R; a missing or zero diagonal means A was singular.
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for (k, row) in r_rows.iter().enumerate() {
            let row = row.as_ref().ok_or(Error::SingularMatrix { at: k })?;
            if row.first().map(|&(c, v)| c != k || v.abs() < 1e-12).unwrap_or(true) {
                return Err(Error::SingularMatrix { at: k });
            }
            for &(c, v) in row {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        let r = CsrMatrix::from_raw_unchecked(n, n, indptr, indices, values);
        Ok(SparseQr { r, rotations, home, n })
    }

    /// The upper-triangular factor.
    pub fn r(&self) -> &CsrMatrix {
        &self.r
    }

    /// Number of recorded rotations (the implicit `Q`'s size).
    pub fn num_rotations(&self) -> usize {
        self.rotations.len()
    }

    /// Applies `Qᵀ` to a vector by replaying the rotation log.
    pub fn apply_qt(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(Error::DimensionMismatch {
                op: "sparse qr apply_qt",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let mut w = b.to_vec();
        for rot in &self.rotations {
            let (wp, wq) = (w[rot.p], w[rot.q]);
            w[rot.p] = rot.c * wp + rot.s * wq;
            w[rot.q] = -rot.s * wp + rot.c * wq;
        }
        // Gather R-row order.
        Ok(self.home.iter().map(|&slot| w[slot]).collect())
    }

    /// Solves `A x = b` via `R x = Qᵀ b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = self.apply_qt(b)?;
        // Back substitution on sparse R (rows are col-sorted, diag first).
        for k in (0..self.n).rev() {
            let (cols, vals) = self.r.row(k);
            let mut acc = y[k];
            for (&c, &v) in cols.iter().zip(vals).skip(1) {
                acc -= v * y[c];
            }
            y[k] = acc / vals[0];
        }
        Ok(y)
    }

    /// Bytes of the factorization in memory (R + rotation log), in the
    /// same accounting the paper uses for precomputed data.
    pub fn memory_bytes(&self) -> usize {
        use crate::mem::MemoryUsage;
        self.r.memory_bytes()
            + self.rotations.len() * std::mem::size_of::<GivensRotation>()
            + self.home.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::DenseLu;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dd(n: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut sums = vec![0.0; n];
        for (i, si) in sums.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && rng.gen_bool(0.15) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    coo.push(i, j, v);
                    *si += v.abs();
                }
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            coo.push(i, i, s + 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn solve_matches_dense_lu() {
        for seed in [1, 2, 3] {
            let n = 25;
            let a = random_dd(n, seed);
            let qr = SparseQr::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
            let x = qr.solve(&b).unwrap();
            let oracle = DenseLu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
            for (p, q) in x.iter().zip(&oracle) {
                assert!((p - q).abs() < 1e-9, "seed {seed}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diagonal_structure() {
        let a = random_dd(15, 9);
        let qr = SparseQr::factor(&a).unwrap();
        for (r, c, _) in qr.r().iter() {
            assert!(c >= r, "entry below diagonal at ({r},{c})");
        }
        for k in 0..15 {
            assert!(qr.r().get(k, k).abs() > 1e-12);
        }
    }

    #[test]
    fn qt_preserves_norm() {
        // Q is orthogonal, so ||Q^T b|| = ||b||.
        let a = random_dd(20, 4);
        let qr = SparseQr::factor(&a).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let qtb = qr.apply_qt(&b).unwrap();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nq: f64 = qtb.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nb - nq).abs() < 1e-10, "{nb} vs {nq}");
    }

    #[test]
    fn identity_factors_trivially() {
        let i = CsrMatrix::identity(6);
        let qr = SparseQr::factor(&i).unwrap();
        assert_eq!(qr.num_rotations(), 0);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(qr.solve(&b).unwrap(), b);
    }

    #[test]
    fn permutation_matrix_handled_without_pivoting_trouble() {
        // Rows arrive in an order that forces rotations / row adoption.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 1, 1.0);
        let a = coo.to_csr();
        let qr = SparseQr::factor(&a).unwrap();
        let b = vec![3.0, 1.0, 2.0];
        let x = qr.solve(&b).unwrap();
        // A x = b with A the permutation: x = [1, 2, 3].
        for (got, want) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        // Zero column 1.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 2, 1.0);
        let a = coo.to_csr();
        assert!(matches!(SparseQr::factor(&a), Err(Error::SingularMatrix { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(SparseQr::factor(&a).is_err());
    }

    #[test]
    fn memory_far_below_dense_q_on_structured_matrix() {
        // A banded matrix: R stays banded, rotations stay O(n·band).
        let n = 200;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, 1.0);
                coo.push(i + 1, i, 1.0);
            }
        }
        let a = coo.to_csr();
        let qr = SparseQr::factor(&a).unwrap();
        let dense_q_bytes = n * n * 8;
        assert!(
            qr.memory_bytes() < dense_q_bytes / 10,
            "sparse QR {} not far below dense {}",
            qr.memory_bytes(),
            dense_q_bytes
        );
    }
}
