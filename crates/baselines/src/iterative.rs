//! The iterative (power) method: the definitional RWR algorithm
//! (Equation 3 of the paper), with no preprocessing.

use bear_core::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_core::{metrics::l1_diff, RwrSolver};
use bear_graph::Graph;
use bear_sparse::{CsrMatrix, Error, Result};

/// Configuration for the iterative method.
#[derive(Debug, Clone, Copy)]
pub struct IterativeConfig {
    /// Restart probability and normalization.
    pub rwr: RwrConfig,
    /// Convergence threshold `ε` on `‖r⁽ⁱ⁾ − r⁽ⁱ⁻¹⁾‖₁`. The paper uses
    /// `10⁻⁸`.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig { rwr: RwrConfig::default(), epsilon: 1e-8, max_iterations: 10_000 }
    }
}

/// The iterative RWR solver. "Preprocessing" is only building `Ãᵀ`
/// (charged as zero preprocessed bytes, matching the paper's accounting:
/// the graph itself is an input, not precomputed data).
#[derive(Debug, Clone)]
pub struct Iterative {
    at: CsrMatrix,
    c: f64,
    epsilon: f64,
    max_iterations: usize,
}

impl Iterative {
    /// Prepares the iterative method for `g`.
    pub fn new(g: &Graph, config: &IterativeConfig) -> Result<Self> {
        config.rwr.validate()?;
        let at = normalized_adjacency(g, &config.rwr).transpose();
        Ok(Iterative {
            at,
            c: config.rwr.c,
            epsilon: config.epsilon,
            max_iterations: config.max_iterations,
        })
    }

    /// Runs the update rule (Equation 3) until the L1 change drops below
    /// `ε`. The iteration contracts with factor `1 − c < 1`, so the cap is
    /// generous; hitting it indicates a configuration error.
    fn run(&self, q: &[f64]) -> Result<Vec<f64>> {
        let mut r = q.to_vec();
        for _ in 0..self.max_iterations {
            // r' = (1-c) Ãᵀ r + c q
            let mut next = self.at.matvec(&r)?;
            for (nv, &qv) in next.iter_mut().zip(q) {
                *nv = (1.0 - self.c) * *nv + self.c * qv;
            }
            let delta = l1_diff(&next, &r);
            r = next;
            if delta < self.epsilon {
                return Ok(r);
            }
        }
        Err(Error::DidNotConverge { what: "iterative RWR", iterations: self.max_iterations })
    }
}

impl RwrSolver for Iterative {
    fn name(&self) -> &'static str {
        "Iterative"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.at.nrows() {
            return Err(Error::DimensionMismatch {
                op: "iterative query",
                lhs: (self.at.nrows(), 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        self.run(q)
    }

    fn num_nodes(&self) -> usize {
        self.at.nrows()
    }

    fn memory_bytes(&self) -> usize {
        0 // no precomputed data beyond the input graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::{Bear, BearConfig};

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn converges_to_bear_exact_solution() {
        let g = undirected(7, &[(0, 1), (0, 2), (2, 3), (3, 4), (0, 5), (5, 6)]);
        let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..7 {
            let ri = it.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in ri.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn reports_zero_preprocessed_memory() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
        assert_eq!(it.memory_bytes(), 0);
        assert_eq!(it.num_nodes(), 3);
        assert_eq!(it.name(), "Iterative");
    }

    #[test]
    fn seed_query_equals_one_hot_distribution() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
        let via_seed = it.query(2).unwrap();
        let via_dist = it.query_distribution(&[0.0, 0.0, 1.0, 0.0]).unwrap();
        assert_eq!(via_seed, via_dist);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let it = Iterative::new(&g, &IterativeConfig::default()).unwrap();
        assert!(it.query(3).is_err());
        assert!(it.query_distribution(&[1.0, 0.0]).is_err());
    }
}
