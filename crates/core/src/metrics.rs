//! Accuracy metrics used throughout the paper's evaluation:
//! cosine similarity (footnote 4) and L2 error (footnote 5).

/// Cosine similarity `(r·r̂) / (‖r‖‖r̂‖)`, in `[-1, 1]`. Returns 0 when
/// either vector is all-zero (undefined direction).
///
/// ```
/// use bear_core::metrics::cosine_similarity;
/// assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// L2 norm of the error `‖r̂ − r‖`.
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// L1 norm of the difference (used as the iterative method's convergence
/// criterion).
pub fn l1_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_cosine_one() {
        let v = vec![0.2, 0.3, 0.5];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
        assert_eq!(l2_error(&v, &v), 0.0);
    }

    #[test]
    fn orthogonal_vectors_have_cosine_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn opposite_vectors_have_cosine_minus_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[-1.0, -2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_yields_zero_similarity() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn l2_error_known_value() {
        assert!((l2_error(&[0.0, 3.0], &[4.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_diff_known_value() {
        assert!((l1_diff(&[1.0, 2.0], &[0.0, 4.0]) - 3.0).abs() < 1e-12);
    }
}
