//! Empirical validation of the complexity analysis (Section 3.3,
//! Theorems 2–4): BEAR's preprocessing time, query time, and space
//! measured over a family of hub-and-spoke graphs of growing size but
//! fixed structure (constant hub fraction and cave-size distribution).
//!
//! The theorems predict that with `n₂ = Θ(h)` hubs and bounded block
//! sizes, space and query time grow **linearly** in `n` plus an `n₂²`
//! term, and preprocessing adds an `n₂³` term — so on this family, where
//! hubs grow with √n, all three curves should stay near-linear until the
//! hub terms take over.
//!
//! ```text
//! cargo run --release -p bear-bench --bin complexity_scaling [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::harness::{mean_query_time, measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &[]);
    let mut out = ExperimentResult::new(
        "complexity_scaling",
        "BEAR time/space vs graph size at fixed structure (Theorems 2-4)",
    );
    println!(
        "{:<10} {:>8} {:>9} {:>7} {:>10} {:>11} {:>10}",
        "caves", "n", "m", "n2", "pre(s)", "query(ms)", "mem(KB)"
    );
    for &caves in &[500usize, 1000, 2000, 4000, 8000] {
        let config = HubSpokeConfig {
            num_hubs: ((caves as f64).sqrt() as usize).max(4),
            num_caves: caves,
            max_cave_size: 5,
            cave_density: 0.3,
            hub_links: 1,
            hub_density: 0.3,
        };
        let g = hub_and_spoke(&config, &mut StdRng::seed_from_u64(77));
        let (bear, pre_s) = measure(|| Bear::new(&g, &BearConfig::default()).expect("preprocess"));
        let query_s = mean_query_time(&bear, opts.num_seeds.max(5));
        println!(
            "{:<10} {:>8} {:>9} {:>7} {:>10.3} {:>11.3} {:>10}",
            caves,
            g.num_nodes(),
            g.num_edges(),
            bear.n_hubs(),
            pre_s,
            query_s * 1e3,
            bear.memory_bytes() / 1024
        );
        let mut row = ResultRow::new(&format!("caves_{caves}"), "BEAR-Exact");
        row.param = Some(format!("n={} n2={}", g.num_nodes(), bear.n_hubs()));
        row.preprocess_s = Some(pre_s);
        row.query_s = Some(query_s);
        row.memory_bytes = Some(bear.memory_bytes());
        out.rows.push(row);
    }
    // Near-linear check: memory per node should stay within a small
    // constant factor across the sweep.
    let per_node: Vec<f64> = out
        .rows
        .iter()
        .map(|r| {
            let n: f64 = r
                .param
                .as_ref()
                .and_then(|p| p.split(['=', ' ']).nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0);
            r.memory_bytes.unwrap_or(0) as f64 / n
        })
        .collect();
    let (min, max) =
        per_node.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!("\nbytes per node across the sweep: {min:.1} .. {max:.1} (ratio {:.2})", max / min);
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
