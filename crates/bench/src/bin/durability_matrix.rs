//! Durability failure matrix: exercises the read-side corruption
//! contract over a grid of damage patterns and records the outcome of
//! every cell — the artifact CI uploads so a regression shows exactly
//! which damage class started slipping through.
//!
//! The grid runs over **both persisted formats**: the monolithic v2
//! image and the sharded out-of-core v3 image (whose cells add
//! segment-boundary truncations and bit flips inside shard payloads,
//! the segment directory, and the v3 trailer). Each cell applies one
//! corruption (truncation to a fraction of the file, a single bit flip
//! at a position, header garbage, trailing junk) and asserts the
//! durability contract: `Bear::load` must either return the typed
//! `CorruptIndex` error or — only when the damage is a full-length
//! no-op — answer bit-identically to the undamaged index. Any panic,
//! untyped error, or silently absorbed corruption fails the run.
//!
//! ```text
//! cargo run --release -p bear-bench --bin durability_matrix -- \
//!     [--dataset small_routing] [--json results/DURABILITY_matrix.json]
//! ```

use bear_bench::harness::{ExperimentResult, ResultRow};
use bear_core::{persist, Bear, BearConfig};
use bear_sparse::Error;
use std::path::PathBuf;

struct Cell {
    /// Damage class label (JSON `method` column, prefixed with the
    /// format version).
    class: &'static str,
    /// Cell parameter (offset/fraction description).
    param: String,
    /// The damaged image.
    bytes: Vec<u8>,
}

/// The format-agnostic damage grid. `trailer_len` steers the
/// "all_but_trailer" cut (20 bytes for v2, 28 for v3).
fn cells(full: &[u8], trailer_len: usize) -> Vec<Cell> {
    let len = full.len();
    let mut cells = Vec::new();
    // Torn writes: prefixes at coarse fractions plus the exact frame
    // boundaries most likely to be "almost valid".
    for (tag, keep) in [
        ("empty", 0),
        ("magic_only", 8),
        ("1/16", len / 16),
        ("1/4", len / 4),
        ("1/2", len / 2),
        ("3/4", 3 * len / 4),
        ("all_but_trailer", len.saturating_sub(trailer_len)),
        ("all_but_one", len - 1),
    ] {
        cells.push(Cell {
            class: "truncate",
            param: format!("{tag} ({keep} bytes)"),
            bytes: full[..keep].to_vec(),
        });
    }
    // Bit rot: single flips spread across the span, including the
    // header, the first payload, and the trailer checksum itself.
    for byte in [0, 7, 9, 33, len / 3, len / 2, len - trailer_len - 1, len - 9, len - 1] {
        let mut bytes = full.to_vec();
        bytes[byte] ^= 1 << (byte % 8);
        cells.push(Cell { class: "bit_flip", param: format!("byte {byte}"), bytes });
    }
    // Wrong or garbage header.
    let mut wrong_magic = full.to_vec();
    wrong_magic[..8].copy_from_slice(b"NOTBEAR!");
    cells.push(Cell { class: "header", param: "wrong magic".into(), bytes: wrong_magic });
    cells.push(Cell { class: "header", param: "garbage".into(), bytes: vec![0x5A; 256] });
    // Appended junk: the trailer records the true length, so trailing
    // bytes are torn-write debris and must be rejected.
    let mut padded = full.to_vec();
    padded.extend_from_slice(&[0u8; 64]);
    cells.push(Cell { class: "append", param: "64 junk bytes".into(), bytes: padded });
    cells
}

/// v3-only cells aimed at the sharded layout: cuts on and inside
/// segment frames, flips in a shard payload, the resident region
/// (which holds the `SDIR` segment directory), and the trailer's
/// resident-offset field.
fn v3_shard_cells(full: &[u8]) -> Vec<Cell> {
    let read_u64 =
        |pos: usize| u64::from_le_bytes(full[pos..pos + 8].try_into().expect("u64 window"));
    let trailer_off = full.len() - 28;
    let resident_off = read_u64(trailer_off + 12) as usize;
    let mut cells = Vec::new();

    if resident_off > 8 {
        // First segment frame: tag(4) len(8) payload crc(4) at offset 8.
        let seg0_payload_len = read_u64(12) as usize;
        let seg0_end = 8 + 12 + seg0_payload_len + 4;
        for (tag, keep) in [
            ("mid_first_segment", 8 + 12 + seg0_payload_len / 2),
            ("first_segment_boundary", seg0_end),
            ("segments_only", resident_off),
        ] {
            cells.push(Cell {
                class: "truncate_shard",
                param: format!("{tag} ({keep} bytes)"),
                bytes: full[..keep].to_vec(),
            });
        }
        let inside_seg0 = 8 + 12 + seg0_payload_len / 2;
        let mut bytes = full.to_vec();
        bytes[inside_seg0] ^= 1;
        cells.push(Cell {
            class: "bit_flip_shard",
            param: format!("first segment payload byte {inside_seg0}"),
            bytes,
        });
    }
    let inside_resident = resident_off + (trailer_off - resident_off) / 2;
    let mut bytes = full.to_vec();
    bytes[inside_resident] ^= 0x10;
    cells.push(Cell {
        class: "bit_flip_resident",
        param: format!("resident region byte {inside_resident}"),
        bytes,
    });
    let mut bytes = full.to_vec();
    bytes[trailer_off + 12] ^= 0x01; // resident_off low byte
    cells.push(Cell {
        class: "bit_flip_trailer",
        param: "trailer resident_off field".into(),
        bytes,
    });
    cells
}

/// Runs every cell against one persisted format, appending a row per
/// cell. Returns the number of contract violations.
fn run_grid(
    out: &mut ExperimentResult,
    dataset: &str,
    version_tag: &str,
    path: &PathBuf,
    full: &[u8],
    reference: &[f64],
    grid: Vec<Cell>,
) -> u32 {
    let mut failures = 0u32;
    for cell in grid {
        std::fs::write(path, &cell.bytes).expect("write cell");
        let load = std::panic::catch_unwind(|| Bear::load(path));
        let verify = persist::verify_index(path);
        let outcome = match &load {
            Err(_) => {
                failures += 1;
                "PANIC".to_string()
            }
            Ok(Err(Error::CorruptIndex { section, .. })) => format!("typed ({section})"),
            Ok(Err(other)) => {
                failures += 1;
                format!("UNTYPED: {other}")
            }
            Ok(Ok(loaded)) => {
                // Only acceptable if the damage was byte-preserving,
                // which no cell in this grid is.
                failures += 1;
                let identical = loaded
                    .query(0)
                    .map(|s| s.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()))
                    .unwrap_or(false);
                format!("ABSORBED (bit_identical={identical})")
            }
        };
        // load and verify must agree: both reject or both accept.
        let verdicts_agree = matches!(&load, Ok(r) if r.is_ok() == verify.is_ok());
        if !verdicts_agree {
            failures += 1;
        }
        let mut row = ResultRow::new(dataset, &format!("{version_tag}_{}", cell.class));
        row.param = Some(format!("{}: load={outcome} verify_agrees={verdicts_agree}", cell.param));
        row.memory_bytes = Some(cell.bytes.len());
        if outcome.starts_with("PANIC")
            || outcome.starts_with("UNTYPED")
            || outcome.starts_with("ABSORBED")
            || !verdicts_agree
        {
            row.failed = Some(outcome.clone());
        }
        out.rows.push(row);
    }
    failures
}

fn main() {
    let args = bear_bench::cli::Args::from_env();
    let dataset = args.get("--dataset").unwrap_or("small_routing").to_string();
    let json_path = args.get("--json").unwrap_or("results/DURABILITY_matrix.json").to_string();

    let spec = bear_datasets::dataset_by_name(&dataset)
        .unwrap_or_else(|| panic!("unknown dataset '{dataset}'"));
    let g = spec.load();
    let bear = Bear::new(&g, &BearConfig::exact(0.05)).expect("preprocess");
    let reference = bear.query(0).expect("reference query");

    let mut out = ExperimentResult::new(
        "durability_matrix",
        &format!(
            "read-side corruption grid over v2 and sharded v3 images of '{dataset}': every \
             cell must fail with the typed CorruptIndex error (never panic, never load \
             damaged data); verify_index must agree with load on every cell"
        ),
    );

    let mut failures = 0u32;
    for version in [2u32, 3] {
        let path: PathBuf = std::env::temp_dir().join(format!("bear_durability_matrix_v{version}.idx"));
        match version {
            2 => bear.save(&path).expect("save v2"),
            _ => bear.save_v3(&path).expect("save v3"),
        }
        let full = std::fs::read(&path).expect("read image");

        // The pristine image must verify end to end before any cell runs.
        let report = persist::verify_index(&path).expect("fresh index must verify");
        assert_eq!(report.version, version);

        let trailer_len = if version == 2 { 20 } else { 28 };
        let mut grid = cells(&full, trailer_len);
        if version == 3 {
            grid.extend(v3_shard_cells(&full));
        }
        let tag = format!("v{version}");
        failures += run_grid(&mut out, &dataset, &tag, &path, &full, &reference, grid);

        // Control: restore the pristine image and prove it still answers.
        std::fs::write(&path, &full).expect("restore");
        let restored = Bear::load(&path).expect("restored image must load");
        let answer = restored.query(0).expect("restored query");
        assert!(
            answer.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "{tag} control answer drifted"
        );
        std::fs::remove_file(&path).ok();
    }

    out.print_table();
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path} ({} cells)", out.rows.len());
    assert_eq!(failures, 0, "{failures} durability cell(s) violated the corruption contract");
    println!("durability matrix clean: every damaged image failed typed (v2 and v3)");
}
