//! Umbrella crate for the BEAR reproduction workspace.
//!
//! This crate re-exports the member crates so examples and integration tests
//! can use a single import root. Library users should depend on the member
//! crates (`bear-core`, `bear-graph`, ...) directly.

pub use bear_baselines as baselines;
pub use bear_core as core;
pub use bear_datasets as datasets;
pub use bear_graph as graph;
pub use bear_sparse as sparse;
