//! Deterministic torn-write / crash-injection suite for index
//! durability (requires `--features failpoints` for the save-path
//! cases; the byte-sweep cases run under default features too and are
//! duplicated here so one binary holds the whole durability contract).
//!
//! The contract under test: **every prefix or single-bit corruption of
//! a valid index either loads bit-identically or fails with
//! `Error::CorruptIndex` — never a panic, never an index that would
//! serve wrong answers.** And on the write side: **a crash (injected
//! failure) at any step of `Bear::save` leaves the previous index
//! intact and loadable; only a fully synced, renamed image ever
//! occupies the target path.**
//!
//! Run via:
//!
//! ```text
//! cargo test -p bear-core --test crash_injection --features failpoints
//! ```

use bear_core::{Bear, BearConfig};
use bear_graph::Graph;
use bear_sparse::Error;
use std::path::PathBuf;

#[cfg(feature = "failpoints")]
use bear_core::failpoints::{self, FailAction};
#[cfg(feature = "failpoints")]
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The failpoint registry is process-global, so armed cases must not
/// overlap. Each failpoint test holds this lock for its whole body; the
/// guard disarms every site on drop (including panics).
#[cfg(feature = "failpoints")]
struct Serial(#[allow(dead_code)] MutexGuard<'static, ()>);

#[cfg(feature = "failpoints")]
fn serial() -> Serial {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard =
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoints::clear_all();
    Serial(guard)
}

#[cfg(feature = "failpoints")]
impl Drop for Serial {
    fn drop(&mut self) {
        failpoints::clear_all();
    }
}

fn test_graph() -> Graph {
    let mut edges = Vec::new();
    for v in 1..14 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    edges.push((4, 5));
    edges.push((5, 4));
    edges.push((9, 10));
    edges.push((10, 9));
    Graph::from_edges(14, &edges).unwrap()
}

fn build() -> Bear {
    Bear::new(&test_graph(), &BearConfig::exact(0.15)).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(name)
}

/// No stray `.tmp.` artifacts in the temp directory for this test's
/// index name — the atomic writer must clean up after injected crashes.
fn assert_no_temp_files(stem: &str) {
    let dir = std::env::temp_dir();
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(stem) && n.contains(".tmp."))
        .collect();
    assert!(strays.is_empty(), "stray temp files left behind: {strays:?}");
}

// ---------------------------------------------------------------------------
// Read-side property sweep (default features): every truncation and
// every probed bit flip of a valid image fails typed, never panics.
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_fails_typed_or_loads_identically() {
    let bear = build();
    let path = tmp("bear_crash_trunc_sweep.idx");
    bear.save(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let reference = bear.query(3).unwrap();

    // Every prefix length: cheap enough at this index size (a few KB)
    // to be exhaustive rather than sampled.
    for keep in 0..=full.len() {
        std::fs::write(&path, &full[..keep]).unwrap();
        match Bear::load(&path) {
            Ok(loaded) => {
                assert_eq!(keep, full.len(), "a strict prefix ({keep} bytes) loaded");
                assert_eq!(loaded.query(3).unwrap(), reference);
            }
            Err(Error::CorruptIndex { .. }) => {}
            Err(other) => panic!("truncation to {keep} bytes: untyped error {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_probed_bit_flip_fails_typed_or_loads_identically() {
    let bear = build();
    let path = tmp("bear_crash_flip_sweep.idx");
    bear.save(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let reference = bear.query(7).unwrap();

    // Probe every byte with a stride-free single-bit flip (bit index
    // varies with position so all eight bit lanes are covered).
    for byte in 0..full.len() {
        let bit = byte % 8;
        let mut bytes = full.clone();
        bytes[byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Bear::load(&path) {
            // A flip must never be silently absorbed. (CRC-32 detects
            // all single-bit errors, so Ok here would mean the byte is
            // outside the checksummed span — there is no such byte.)
            Ok(_) => panic!("bit flip at byte {byte} bit {bit} was absorbed"),
            Err(Error::CorruptIndex { .. }) => {}
            Err(other) => panic!("flip at byte {byte} bit {bit}: untyped error {other:?}"),
        }
    }

    // Control: the unflipped image still answers identically.
    std::fs::write(&path, &full).unwrap();
    assert_eq!(Bear::load(&path).unwrap().query(7).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_over_existing_index_replaces_it_atomically() {
    let a = build();
    let path = tmp("bear_crash_replace.idx");
    a.save(&path).unwrap();
    let first = std::fs::read(&path).unwrap();
    // Saving again (same index) must go through the temp+rename path and
    // land byte-identically; a direct overwrite could tear.
    a.save(&path).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), first);
    assert_no_temp_files("bear_crash_replace");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Write-side crash injection (failpoints feature).
// ---------------------------------------------------------------------------

/// Arms `site` with `action`, attempts to save `new_index` over an
/// existing good index, asserts the save fails, and proves the previous
/// index is still present bit-for-bit and loadable.
#[cfg(feature = "failpoints")]
fn assert_crash_preserves_target(site: &'static str, action: FailAction, tag: &str) {
    let bear = build();
    let path = tmp(&format!("bear_crash_{tag}.idx"));
    bear.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    failpoints::configure(site, action);
    let err = bear.save(&path).unwrap_err();
    failpoints::clear(site);
    assert!(
        matches!(err, Error::InvalidStructure(_)),
        "injected crash at {site} surfaced oddly: {err:?}"
    );

    assert_eq!(std::fs::read(&path).unwrap(), before, "crash at {site} altered the target");
    Bear::load(&path).unwrap();
    assert_no_temp_files(&format!("bear_crash_{tag}"));
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "failpoints")]
#[test]
fn crash_before_write_preserves_previous_index() {
    let _serial = serial();
    assert_crash_preserves_target("persist::save::write", FailAction::Fail, "w_fail");
}

#[cfg(feature = "failpoints")]
#[test]
fn torn_write_crash_preserves_previous_index() {
    let _serial = serial();
    // Truncation points must fall inside the image — a cut at or past
    // the end is a complete write, which (correctly) succeeds.
    let probe = tmp("bear_crash_size_probe.idx");
    build().save(&probe).unwrap();
    let size = std::fs::metadata(&probe).unwrap().len();
    std::fs::remove_file(&probe).ok();
    for k in [0, 1, size / 3, size - 1] {
        assert_crash_preserves_target("persist::save::write", FailAction::TruncateAt(k), "w_torn");
    }
}

#[cfg(feature = "failpoints")]
#[test]
fn crash_before_fsync_preserves_previous_index() {
    let _serial = serial();
    assert_crash_preserves_target("persist::save::sync", FailAction::Fail, "sync_fail");
}

#[cfg(feature = "failpoints")]
#[test]
fn rename_failure_preserves_previous_index() {
    let _serial = serial();
    assert_crash_preserves_target("persist::save::rename", FailAction::Fail, "rename_fail");
}

#[cfg(feature = "failpoints")]
#[test]
fn first_save_crash_leaves_no_target_at_all() {
    let _serial = serial();
    let bear = build();
    let path = tmp("bear_crash_first_save.idx");
    std::fs::remove_file(&path).ok();
    failpoints::configure("persist::save::rename", FailAction::Fail);
    assert!(bear.save(&path).is_err());
    failpoints::clear_all();
    // No target, no temp debris — the failed save is invisible.
    assert!(!path.exists(), "failed first save materialized a target file");
    assert_no_temp_files("bear_crash_first_save");
}

/// The lying-disk scenario: the temp file is corrupted *after* the
/// fsync and the rename then succeeds, so `save` reports Ok with a
/// damaged artifact in place. The durability contract moves to the read
/// side: load must fail typed and quarantine must capture the artifact.
#[cfg(feature = "failpoints")]
#[test]
fn lying_disk_torn_image_is_caught_at_load_and_quarantined() {
    let _serial = serial();
    let bear = build();
    let path = tmp("bear_crash_lying_trunc.idx");
    let quarantined = tmp("bear_crash_lying_trunc.idx.corrupt");
    std::fs::remove_file(&quarantined).ok();

    bear.save(&path).unwrap();
    let full_len = std::fs::read(&path).unwrap().len() as u64;

    for k in [0, 8, 27, full_len / 2, full_len - 1] {
        failpoints::configure("persist::save::torn", FailAction::TruncateAt(k));
        bear.save(&path).unwrap(); // the disk lies: save sees success
        failpoints::clear_all();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), k.min(full_len));

        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptIndex { .. }),
            "torn image (cut to {k}) must fail typed, got: {err:?}"
        );
        assert!(!path.exists(), "torn artifact (cut to {k}) was not quarantined");
        assert!(quarantined.exists(), "quarantine file missing for cut {k}");
        std::fs::remove_file(&quarantined).ok();

        // Re-seed a good index for the next round.
        bear.save(&path).unwrap();
    }
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "failpoints")]
#[test]
fn lying_disk_bit_rot_is_caught_at_load() {
    let _serial = serial();
    let bear = build();
    let path = tmp("bear_crash_lying_flip.idx");
    bear.save(&path).unwrap();
    let bits = std::fs::metadata(&path).unwrap().len() * 8;

    for bit in [0, 63, 64, 1001, bits / 2, bits - 1] {
        failpoints::configure("persist::save::torn", FailAction::BitFlip(bit));
        bear.save(&path).unwrap();
        failpoints::clear_all();

        let err = Bear::load(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptIndex { .. }),
            "bit rot at bit {bit} must fail typed, got: {err:?}"
        );
        bear.save(&path).unwrap();
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Sharded v3 images: the same durability contract, segment by segment.
// The streamed writer shares the v2 failpoint sites, and every shard
// carries its own CRC frame, so damage anywhere — a segment, the
// directory, the resident region, the trailer — must fail typed at
// load, never at query time from a page fault.
// ---------------------------------------------------------------------------

#[test]
fn v3_every_truncation_fails_typed_or_loads_identically() {
    let bear = build();
    let path = tmp("bear_crash_v3_trunc_sweep.idx");
    bear.save_v3(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let reference = bear.query(3).unwrap();

    for keep in 0..=full.len() {
        std::fs::write(&path, &full[..keep]).unwrap();
        match Bear::load(&path) {
            Ok(loaded) => {
                assert_eq!(keep, full.len(), "a strict v3 prefix ({keep} bytes) loaded");
                assert_eq!(loaded.query(3).unwrap(), reference);
            }
            Err(Error::CorruptIndex { .. }) => {}
            Err(other) => panic!("v3 truncation to {keep} bytes: untyped error {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v3_every_probed_bit_flip_fails_typed_at_load() {
    let bear = build();
    let path = tmp("bear_crash_v3_flip_sweep.idx");
    bear.save_v3(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let reference = bear.query(7).unwrap();

    // The load-time sweep CRC-checks every segment frame as well as the
    // resident region, so no byte of the file is outside a checksummed
    // span: every flip must be caught *at load*, before any query can
    // page a damaged shard in.
    for byte in 0..full.len() {
        let bit = byte % 8;
        let mut bytes = full.clone();
        bytes[byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match Bear::load(&path) {
            Ok(_) => panic!("v3 bit flip at byte {byte} bit {bit} was absorbed"),
            Err(Error::CorruptIndex { .. }) => {}
            Err(other) => panic!("v3 flip at byte {byte} bit {bit}: untyped error {other:?}"),
        }
    }

    std::fs::write(&path, &full).unwrap();
    assert_eq!(Bear::load(&path).unwrap().query(7).unwrap(), reference);
    std::fs::remove_file(&path).ok();
}

/// Like [`assert_crash_preserves_target`] but for the streamed v3
/// writer, which shares the v2 failpoint sites.
#[cfg(feature = "failpoints")]
fn assert_v3_crash_preserves_target(site: &'static str, action: FailAction, tag: &str) {
    let bear = build();
    let path = tmp(&format!("bear_crash_v3_{tag}.idx"));
    bear.save_v3(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    failpoints::configure(site, action);
    let err = bear.save_v3(&path).unwrap_err();
    failpoints::clear(site);
    assert!(
        matches!(err, Error::InvalidStructure(_)),
        "injected v3 crash at {site} surfaced oddly: {err:?}"
    );

    assert_eq!(std::fs::read(&path).unwrap(), before, "v3 crash at {site} altered the target");
    Bear::load(&path).unwrap();
    assert_no_temp_files(&format!("bear_crash_v3_{tag}"));
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "failpoints")]
#[test]
fn v3_crash_at_any_save_step_preserves_previous_index() {
    let _serial = serial();
    assert_v3_crash_preserves_target("persist::save::write", FailAction::Fail, "w_fail");
    assert_v3_crash_preserves_target("persist::save::sync", FailAction::Fail, "sync_fail");
    assert_v3_crash_preserves_target("persist::save::rename", FailAction::Fail, "rename_fail");
}

#[cfg(feature = "failpoints")]
#[test]
fn v3_torn_stream_crash_preserves_previous_index() {
    let _serial = serial();
    let probe = tmp("bear_crash_v3_size_probe.idx");
    build().save_v3(&probe).unwrap();
    let size = std::fs::metadata(&probe).unwrap().len();
    std::fs::remove_file(&probe).ok();
    // Cuts landing mid-segment, mid-resident-region, and inside the
    // trailer — the streamed writer must discard the torn temp file in
    // every case.
    for k in [0, 1, size / 4, size / 2, size - 1] {
        assert_v3_crash_preserves_target("persist::save::write", FailAction::TruncateAt(k), "torn");
    }
}

/// The lying-disk scenario against shard segments: the temp file is
/// damaged after the fsync and the rename succeeds, so a corrupt v3
/// image lands at the target. `load_or_quarantine` must fail typed and
/// move the artifact aside — truncations and bit rot alike.
#[cfg(feature = "failpoints")]
#[test]
fn v3_lying_disk_damage_is_caught_at_load_and_quarantined() {
    let _serial = serial();
    let bear = build();
    let path = tmp("bear_crash_v3_lying.idx");
    let quarantined = tmp("bear_crash_v3_lying.idx.corrupt");
    std::fs::remove_file(&quarantined).ok();

    bear.save_v3(&path).unwrap();
    let full_len = std::fs::read(&path).unwrap().len() as u64;

    // Torn tails: cuts inside the segment region, the resident region,
    // and the trailer.
    for k in [0, 8, 27, full_len / 4, full_len / 2, full_len - 1] {
        failpoints::configure("persist::save::torn", FailAction::TruncateAt(k));
        bear.save_v3(&path).unwrap(); // the disk lies: save sees success
        failpoints::clear_all();

        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptIndex { .. }),
            "torn v3 image (cut to {k}) must fail typed, got: {err:?}"
        );
        assert!(!path.exists(), "torn v3 artifact (cut to {k}) was not quarantined");
        assert!(quarantined.exists(), "quarantine file missing for v3 cut {k}");
        std::fs::remove_file(&quarantined).ok();
        bear.save_v3(&path).unwrap();
    }

    // Bit rot inside the first shard's payload (the segment region
    // starts right after the 8-byte magic, so bit 200 lands in segment
    // bytes) plus spots across the rest of the image.
    let bits = full_len * 8;
    for bit in [200, 64 * 8, bits / 3, bits / 2, bits - 1] {
        failpoints::configure("persist::save::torn", FailAction::BitFlip(bit));
        bear.save_v3(&path).unwrap();
        failpoints::clear_all();

        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptIndex { .. }),
            "v3 bit rot at bit {bit} must fail typed, got: {err:?}"
        );
        assert!(quarantined.exists(), "quarantine file missing for v3 bit {bit}");
        std::fs::remove_file(&quarantined).ok();
        bear.save_v3(&path).unwrap();
    }
    std::fs::remove_file(&path).ok();
}
