//! Measurement and reporting helpers shared by the figure binaries.

use bear_core::RwrSolver;
use serde::Serialize;
use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One measurement row of an experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Dataset name.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// Free-form parameter annotation (e.g. `"xi=n^-1"`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub param: Option<String>,
    /// Preprocessing wall-clock seconds, if measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub preprocess_s: Option<f64>,
    /// Average query wall-clock seconds, if measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub query_s: Option<f64>,
    /// Bytes of precomputed data, if measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub memory_bytes: Option<usize>,
    /// Cosine similarity vs the exact scores, if measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cosine: Option<f64>,
    /// L2 error vs the exact scores, if measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub l2: Option<f64>,
    /// Set when the method aborted (e.g. out of memory budget), with the
    /// reason. Such rows correspond to the paper's omitted bars.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub failed: Option<String>,
}

impl ResultRow {
    /// A fresh row for `dataset` × `method`.
    pub fn new(dataset: &str, method: &str) -> Self {
        ResultRow {
            dataset: dataset.to_string(),
            method: method.to_string(),
            param: None,
            preprocess_s: None,
            query_s: None,
            memory_bytes: None,
            cosine: None,
            l2: None,
            failed: None,
        }
    }
}

/// A full experiment: id, description, and rows. Serialized with
/// `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Paper exhibit id, e.g. `"figure_1b"`.
    pub experiment: String,
    /// One-line description.
    pub description: String,
    /// Measurement rows.
    pub rows: Vec<ResultRow>,
}

impl ExperimentResult {
    /// Creates an experiment result container.
    pub fn new(experiment: &str, description: &str) -> Self {
        ExperimentResult {
            experiment: experiment.to_string(),
            description: description.to_string(),
            rows: Vec::new(),
        }
    }

    /// Prints the rows as an aligned text table (the "same rows the paper
    /// reports" output), then optionally writes JSON.
    pub fn print_table(&self) {
        println!("== {} — {} ==", self.experiment, self.description);
        println!(
            "{:<16} {:<12} {:<14} {:>12} {:>12} {:>12} {:>9} {:>10}  {}",
            "dataset", "method", "param", "pre(s)", "query(ms)", "mem(KB)", "cosine", "L2", "note"
        );
        for r in &self.rows {
            println!(
                "{:<16} {:<12} {:<14} {:>12} {:>12} {:>12} {:>9} {:>10}  {}",
                r.dataset,
                r.method,
                r.param.as_deref().unwrap_or("-"),
                r.preprocess_s.map_or("-".into(), |v| format!("{v:.3}")),
                r.query_s.map_or("-".into(), |v| format!("{:.3}", v * 1e3)),
                r.memory_bytes.map_or("-".into(), |v| format!("{}", v / 1024)),
                r.cosine.map_or("-".into(), |v| format!("{v:.4}")),
                r.l2.map_or("-".into(), |v| format!("{v:.2e}")),
                r.failed.as_deref().unwrap_or(""),
            );
        }
        println!();
    }

    /// Writes the experiment as JSON to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("serializable");
        std::fs::write(path, json)
    }
}

/// Average single-seed query time over `num_seeds` deterministic
/// pseudo-random seeds (the paper averages over 1000 random seeds).
pub fn mean_query_time(solver: &dyn RwrSolver, num_seeds: usize) -> f64 {
    let n = solver.num_nodes();
    let mut total = 0.0;
    for i in 0..num_seeds {
        // Simple deterministic spread of seed nodes.
        let seed = (i * 2654435761) % n;
        let (_, secs) = measure(|| solver.query(seed).expect("query succeeds"));
        total += secs;
    }
    total / num_seeds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_time() {
        let (value, secs) = measure(|| (0..1000).sum::<usize>());
        assert_eq!(value, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn result_row_serializes_without_empty_fields() {
        let row = ResultRow::new("d", "m");
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("\"dataset\":\"d\""));
        assert!(!json.contains("preprocess_s"));
    }

    #[test]
    fn experiment_json_round_trip() {
        let mut e = ExperimentResult::new("figure_test", "desc");
        let mut row = ResultRow::new("d", "m");
        row.query_s = Some(0.5);
        e.rows.push(row);
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("figure_test"));
        assert!(json.contains("0.5"));
    }
}
