//! Integration tests for the RWR variants of Section 3.4: personalized
//! PageRank, effective importance, and RWR with the normalized graph
//! Laplacian — checked through the public API across crates.

use bear_core::rwr::{Normalization, RwrConfig};
use bear_core::{Bear, BearConfig};
use bear_datasets::small_suite;
use bear_graph::Graph;

#[test]
fn ppr_with_one_seed_equals_rwr() {
    let g = small_suite()[0].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let n = g.num_nodes();
    for seed in [0, n / 2, n - 1] {
        let mut q = vec![0.0; n];
        q[seed] = 1.0;
        assert_eq!(bear.query(seed).unwrap(), bear.query_distribution(&q).unwrap());
    }
}

#[test]
fn ppr_is_linear_in_the_preference_vector() {
    let g = small_suite()[1].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let n = g.num_nodes();
    let (a, b) = (1, n - 2);
    let ra = bear.query(a).unwrap();
    let rb = bear.query(b).unwrap();
    let mut q = vec![0.0; n];
    q[a] = 0.7;
    q[b] = 0.3;
    let mix = bear.query_distribution(&q).unwrap();
    for i in 0..n {
        let want = 0.7 * ra[i] + 0.3 * rb[i];
        assert!((mix[i] - want).abs() < 1e-10);
    }
}

#[test]
fn ppr_scale_invariance_up_to_scale() {
    // RWR is linear, so scaling q scales r. (The paper normalizes q to a
    // distribution; any positive scale is accepted.)
    let g = small_suite()[0].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let n = g.num_nodes();
    let mut q = vec![0.0; n];
    q[2] = 1.0;
    q[5] = 1.0;
    let r1 = bear.query_distribution(&q).unwrap();
    let q2: Vec<f64> = q.iter().map(|v| 2.0 * v).collect();
    let r2 = bear.query_distribution(&q2).unwrap();
    for (a, b) in r1.iter().zip(&r2) {
        assert!((2.0 * a - b).abs() < 1e-10);
    }
}

#[test]
fn effective_importance_is_rwr_over_degree() {
    let g = small_suite()[3].load();
    let bear = Bear::new(&g, &BearConfig::default()).unwrap();
    let deg = g.undirected_degrees();
    let seed = 10;
    let r = bear.query(seed).unwrap();
    let ei = bear.query_effective_importance(seed).unwrap();
    for u in 0..g.num_nodes() {
        let want = if deg[u] > 0 { r[u] / deg[u] as f64 } else { r[u] };
        assert!((ei[u] - want).abs() < 1e-12);
    }
}

#[test]
fn laplacian_variant_yields_symmetric_relevance_on_undirected_graphs() {
    // Build an undirected graph explicitly.
    let mut edges = Vec::new();
    for spec_edge in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3), (2, 4), (0, 5), (5, 6)] {
        edges.push(spec_edge);
        edges.push((spec_edge.1, spec_edge.0));
    }
    let g = Graph::from_edges(7, &edges).unwrap();
    let config = BearConfig {
        rwr: RwrConfig { c: 0.1, normalization: Normalization::Symmetric },
        ..BearConfig::default()
    };
    let bear = Bear::new(&g, &config).unwrap();
    let all: Vec<Vec<f64>> = (0..7).map(|u| bear.query(u).unwrap()).collect();
    for (u, row) in all.iter().enumerate() {
        for (v, &ruv) in row.iter().enumerate() {
            assert!((ruv - all[v][u]).abs() < 1e-10, "relevance asymmetric between {u} and {v}");
        }
    }
}

#[test]
fn laplacian_variant_differs_from_row_normalized_on_irregular_graphs() {
    let g = small_suite()[0].load();
    let row = Bear::new(&g, &BearConfig::default()).unwrap();
    let sym = Bear::new(
        &g,
        &BearConfig {
            rwr: RwrConfig { c: 0.05, normalization: Normalization::Symmetric },
            ..BearConfig::default()
        },
    )
    .unwrap();
    let rr = row.query(0).unwrap();
    let rs = sym.query(0).unwrap();
    let diff: f64 = rr.iter().zip(&rs).map(|(a, b)| (a - b).abs()).sum();
    assert!(diff > 1e-6, "variants unexpectedly identical");
}
