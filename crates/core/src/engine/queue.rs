//! Shared bounded job queue feeding the worker pool.
//!
//! A `Condvar`-signalled deque instead of an mpsc channel, so the
//! *submitting* thread can opportunistically pop work too
//! ([`JobQueue::try_pop`]) while pool workers block in [`JobQueue::pop`].
//! The lock is held only for queue surgery, never while waiting for or
//! executing a job.
//!
//! The queue is the engine's admission-control point: it holds at most
//! `capacity` jobs. [`JobQueue::push`] *rejects* overload with
//! [`Error::QueueFull`]; [`JobQueue::push_blocking`] *waits* for space,
//! bounded by an optional deadline budget ([`Error::Timeout`]). Either
//! way queue memory stays bounded no matter how fast producers outrun
//! the pool.
//!
//! The queue is generic over the job type and built exclusively on the
//! `crate::sync` shim, so the loom suite
//! (`crates/core/tests/loom_engine.rs`) model-checks exactly the code
//! that runs in production: submit vs. steal, concurrent shutdown, and
//! both wakeup protocols (`ready` for poppers, `space` for blocked
//! pushers) are all explored exhaustively under `--cfg loom`.

use crate::sync::{wait_timeout, Condvar, Mutex};
use bear_sparse::{Error, Result};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Shared multi-producer multi-consumer bounded job queue with explicit
/// shutdown.
///
/// Invariants maintained across all interleavings (loom-checked):
///
/// * every job accepted by a push is handed to exactly one popper;
/// * the queue never holds more than `capacity` jobs;
/// * after [`JobQueue::close`], pushes fail and blocked poppers drain
///   the backlog then observe `None`; blocked pushers wake and fail with
///   [`Error::PoolShutDown`];
/// * a successful push wakes at least one blocked popper, and a pop
///   wakes at least one blocked pusher (the lost-wakeup regressions are
///   demonstrated caught by the loom suite via
///   `JobQueue::push_without_notify` / `JobQueue::pop_without_notify`,
///   compiled only under `cfg(any(test, loom))`).
pub struct JobQueue<T> {
    state: Mutex<JobQueueState<T>>,
    /// Signalled on push: wakes workers blocked in [`JobQueue::pop`].
    ready: Condvar,
    /// Signalled on pop: wakes producers blocked in
    /// [`JobQueue::push_blocking`] on a full queue.
    space: Condvar,
    capacity: usize,
}

struct JobQueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An open, empty, effectively unbounded queue.
    pub fn new() -> Self {
        Self::bounded(usize::MAX)
    }

    /// An open, empty queue holding at most `capacity` jobs (clamped to
    /// at least 1 — a queue that can hold nothing would deadlock every
    /// protocol built on it).
    pub fn bounded(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(JobQueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy by nature; for metrics and tests).
    pub fn len(&self) -> usize {
        self.state.lock().map_or(0, |s| s.jobs.len())
    }

    /// Whether the queue is currently empty (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job and wakes one worker. Fails with
    /// [`Error::QueueFull`] when at capacity (load shedding) and
    /// [`Error::PoolShutDown`] once closed.
    pub fn push(&self, job: T) -> Result<()> {
        {
            let mut state = self.lock_state()?;
            if state.closed {
                return Err(Error::PoolShutDown);
            }
            if state.jobs.len() >= self.capacity {
                return Err(Error::QueueFull { capacity: self.capacity });
            }
            state.jobs.push_back(job);
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues a job, blocking while the queue is full until space
    /// frees up, the optional `budget` elapses ([`Error::Timeout`]), or
    /// the queue closes ([`Error::PoolShutDown`]).
    ///
    /// This is the block-with-deadline overload policy: producers are
    /// backpressured instead of shed, but never parked forever.
    pub fn push_blocking(&self, job: T, budget: Option<Duration>) -> Result<()> {
        let deadline = budget.map(|b| (b, Instant::now() + b));
        let mut state = self.lock_state()?;
        loop {
            if state.closed {
                return Err(Error::PoolShutDown);
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                drop(state);
                self.ready.notify_one();
                return Ok(());
            }
            state = match deadline {
                Some((budget, at)) => {
                    let now = Instant::now();
                    if now >= at {
                        return Err(Error::Timeout { budget });
                    }
                    wait_timeout(&self.space, state, at - now).ok_or(Error::PoolShutDown)?
                }
                None => self.space.wait(state).map_err(|_| Error::PoolShutDown)?,
            };
        }
    }

    /// [`JobQueue::push`] without the worker wakeup — a deliberately
    /// reintroduced lost-notification bug, kept compiled only for the
    /// model-checking suite, which demonstrates that the loom models
    /// catch the resulting deadlock (`lost_notify_is_caught` in
    /// `crates/core/tests/loom_engine.rs`).
    #[cfg(any(test, loom))]
    pub fn push_without_notify(&self, job: T) -> Result<()> {
        let mut state = self.lock_state()?;
        if state.closed {
            return Err(Error::PoolShutDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Error::QueueFull { capacity: self.capacity });
        }
        state.jobs.push_back(job);
        Ok(())
    }

    /// [`JobQueue::pop`] without the space wakeup — the symmetric seeded
    /// bug for the bounded-queue protocol: a producer blocked in
    /// [`JobQueue::push_blocking`] is never woken when a slot frees.
    /// Compiled only for the model-checking suite
    /// (`lost_space_notify_is_caught`).
    #[cfg(any(test, loom))]
    pub fn pop_without_notify(&self) -> Option<T> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).ok()?;
        }
    }

    /// Blocks until a job is available; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().ok()?;
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).ok()?;
        }
    }

    /// Non-blocking pop, used by submitting threads to assist the pool.
    pub fn try_pop(&self) -> Option<T> {
        let job = self.state.lock().ok()?.jobs.pop_front();
        if job.is_some() {
            self.space.notify_one();
        }
        job
    }

    /// Closes the queue and wakes every blocked worker and producer.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.ready.notify_all();
        self.space.notify_all();
    }

    fn lock_state(&self) -> Result<crate::sync::MutexGuard<'_, JobQueueState<T>>> {
        // A poisoned lock means a producer or worker panicked mid-surgery;
        // the queue is unusable, which callers observe as a shutdown.
        self.state.lock().map_err(|_| Error::PoolShutDown)
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}
