//! Reproduces **Figure 5** (and Figure 1(c)'s exact half): space for
//! preprocessed data of the exact methods on every dataset.
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig5_preprocess_space \
//!     [--datasets a,b] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::exact_suite;
use bear_datasets::all_datasets;

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> = all_datasets().iter().map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let mut opts = CommonOpts::from_args(&args, &defaults);
    // Space measurement doesn't need many query samples.
    opts.num_seeds = opts.num_seeds.min(3);
    let result = exact_suite(
        "figure_5",
        "space for preprocessed data of exact methods",
        &opts.datasets,
        opts.num_seeds,
        opts.budget_bytes,
    );
    result.print_table();
    if let Some(path) = &opts.json {
        result.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
