//! Criterion micro-benchmark of the sparse kernels BEAR's phases are
//! built from: SpMV, SpGEMM, sparse LU, and triangular-factor inversion.

use bear_core::rwr::{build_h, RwrConfig};
use bear_datasets::dataset_by_name;
use bear_sparse::ops::spgemm;
use bear_sparse::SparseLu;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let g = dataset_by_name("small_routing").unwrap().load();
    let h = build_h(&g, &RwrConfig::default()).unwrap();
    let n = h.nrows();
    let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();

    c.bench_function("spmv", |b| b.iter(|| std::hint::black_box(h.matvec(&x).unwrap())));

    c.bench_function("spgemm_h_squared", |b| {
        b.iter(|| std::hint::black_box(spgemm(&h, &h).unwrap()))
    });

    let h_csc = h.to_csc();
    c.bench_function("sparse_lu_factor", |b| {
        b.iter(|| std::hint::black_box(SparseLu::factor(&h_csc).unwrap()))
    });

    let lu = SparseLu::factor(&h_csc).unwrap();
    c.bench_function("invert_lu_factors", |b| {
        b.iter(|| std::hint::black_box(lu.invert_factors().unwrap()))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
