//! Method registry: build any solver by name for a given dataset.

use crate::params::DatasetParams;
use bear_baselines::{
    BLin, BLinConfig, Brppr, BrpprConfig, Inversion, Iterative, IterativeConfig, LuDecomp, NbLin,
    NbLinConfig, QrDecomp, Rppr, RpprConfig,
};
use bear_core::{Bear, BearConfig, RwrSolver};
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;
use bear_sparse::Result;

/// Identifier of a method in the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// BEAR-Exact, or BEAR-Approx when `xi > 0`.
    Bear {
        /// Drop tolerance (0 = exact).
        xi: f64,
    },
    /// The iterative power method.
    Iterative,
    /// Restricted PPR with the dataset's `ε_b` (or an override).
    Rppr {
        /// Expansion threshold override; `None` uses the dataset default.
        threshold: Option<f64>,
    },
    /// Boundary-restricted PPR.
    Brppr {
        /// Boundary threshold override; `None` uses the dataset default.
        threshold: Option<f64>,
    },
    /// Dense inversion.
    Inversion,
    /// Fujiwara LU decomposition.
    LuDecomp,
    /// Fujiwara QR decomposition.
    QrDecomp,
    /// Tong B_LIN, with drop tolerance.
    BLin {
        /// Drop tolerance for the stored matrices.
        xi: f64,
    },
    /// Tong NB_LIN, with drop tolerance.
    NbLin {
        /// Drop tolerance for the stored matrices.
        xi: f64,
    },
}

impl MethodSpec {
    /// Display name matching the paper's figures.
    pub fn display_name(&self) -> String {
        match self {
            MethodSpec::Bear { xi } if *xi == 0.0 => "BEAR-Exact".into(),
            MethodSpec::Bear { .. } => "BEAR-Approx".into(),
            MethodSpec::Iterative => "Iterative".into(),
            MethodSpec::Rppr { .. } => "RPPR".into(),
            MethodSpec::Brppr { .. } => "BRPPR".into(),
            MethodSpec::Inversion => "Inversion".into(),
            MethodSpec::LuDecomp => "LU decomp.".into(),
            MethodSpec::QrDecomp => "QR decomp.".into(),
            MethodSpec::BLin { .. } => "B_LIN".into(),
            MethodSpec::NbLin { .. } => "NB_LIN".into(),
        }
    }
}

/// The exact methods compared in Figures 1 and 5, in plot order.
pub fn exact_method_names() -> Vec<MethodSpec> {
    vec![
        MethodSpec::Bear { xi: 0.0 },
        MethodSpec::LuDecomp,
        MethodSpec::QrDecomp,
        MethodSpec::Inversion,
        MethodSpec::Iterative,
    ]
}

/// Builds (= preprocesses) a solver. Errors out with `OutOfBudget` when
/// the method cannot fit its precomputed data in `budget` — the harness
/// renders that as the paper's omitted ("ran out of memory") bars.
pub fn build_method(
    spec: &MethodSpec,
    g: &Graph,
    params: &DatasetParams,
    budget: &MemBudget,
) -> Result<Box<dyn RwrSolver>> {
    let rwr = params.rwr;
    Ok(match *spec {
        MethodSpec::Bear { xi } => Box::new(Bear::new(
            g,
            &BearConfig { rwr, drop_tolerance: xi, budget: *budget, ..BearConfig::default() },
        )?),
        MethodSpec::Iterative => {
            Box::new(Iterative::new(g, &IterativeConfig { rwr, ..Default::default() })?)
        }
        MethodSpec::Rppr { threshold } => Box::new(Rppr::new(
            g,
            &RpprConfig {
                rwr,
                expand_threshold: threshold.unwrap_or(params.rppr_threshold),
                ..Default::default()
            },
        )?),
        MethodSpec::Brppr { threshold } => Box::new(Brppr::new(
            g,
            &BrpprConfig {
                rwr,
                boundary_threshold: threshold.unwrap_or(params.brppr_threshold),
                ..Default::default()
            },
        )?),
        MethodSpec::Inversion => Box::new(Inversion::new(g, &rwr, budget)?),
        MethodSpec::LuDecomp => Box::new(LuDecomp::new(g, &rwr, budget)?),
        MethodSpec::QrDecomp => Box::new(QrDecomp::new(g, &rwr, budget)?),
        MethodSpec::BLin { xi } => Box::new(BLin::new(
            g,
            &BLinConfig {
                rwr,
                num_partitions: params.blin_partitions,
                rank: params.blin_rank,
                drop_tolerance: xi,
                seed: 7,
            },
            budget,
        )?),
        MethodSpec::NbLin { xi } => Box::new(NbLin::new(
            g,
            &NbLinConfig { rwr, rank: params.nblin_rank, drop_tolerance: xi, seed: 7 },
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_datasets::dataset_by_name;

    #[test]
    fn every_method_builds_on_a_small_graph() {
        let g = dataset_by_name("small_routing").unwrap().load();
        let params = DatasetParams::default();
        let budget = MemBudget::unlimited();
        let specs = [
            MethodSpec::Bear { xi: 0.0 },
            MethodSpec::Bear { xi: 1e-4 },
            MethodSpec::Iterative,
            MethodSpec::Rppr { threshold: None },
            MethodSpec::Brppr { threshold: None },
            MethodSpec::Inversion,
            MethodSpec::LuDecomp,
            MethodSpec::QrDecomp,
            MethodSpec::BLin { xi: 0.0 },
            MethodSpec::NbLin { xi: 0.0 },
        ];
        for spec in specs {
            let solver = build_method(&spec, &g, &params, &budget)
                .unwrap_or_else(|e| panic!("{spec:?} failed: {e}"));
            let r = solver.query(0).unwrap();
            assert_eq!(r.len(), g.num_nodes(), "{spec:?}");
        }
    }

    #[test]
    fn display_names_distinguish_exact_and_approx_bear() {
        assert_eq!(MethodSpec::Bear { xi: 0.0 }.display_name(), "BEAR-Exact");
        assert_eq!(MethodSpec::Bear { xi: 0.5 }.display_name(), "BEAR-Approx");
    }
}
