//! Serial-vs-parallel preprocessing speedup: the recordable counterpart
//! of the `bench_precompute` Criterion benchmark. Measures `Bear::new`
//! at `threads ∈ {1, 2, 4}` (best of `--reps`, default 3) on a
//! SlashBurn-friendly hub-and-spoke graph, asserts the parallel results
//! are identical to serial, and reports the speedup per thread count.
//!
//! The speedup is bounded by the cores the host actually grants
//! (`std::thread::available_parallelism`); on a single-core container
//! every thread count degenerates to ~1× and the recorded JSON says so
//! via the `host_cores` annotation.
//!
//! ```text
//! cargo run --release -p bear-bench --bin precompute_speedup \
//!     [--reps 3] [--json results/BENCH_precompute.json]
//! ```

use bear_bench::cli::Args;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let reps: usize = args.get_or("--reps", 3usize).max(1);
    let json_path = args.get("--json").unwrap_or("results/BENCH_precompute.json").to_string();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Same shape as the Criterion bench: many moderate caves so the
    // block LU stage has parallel work worth balancing.
    let g = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 12,
            num_caves: 120,
            max_cave_size: 24,
            cave_density: 0.3,
            hub_links: 2,
            hub_density: 0.4,
        },
        &mut StdRng::seed_from_u64(42),
    );

    let mut out = ExperimentResult::new(
        "precompute_speedup",
        &format!(
            "serial vs multi-threaded Bear::new wall-clock (best of {reps}); \
             host grants {host_cores} core(s), which bounds any speedup"
        ),
    );
    println!(
        "graph: n={} m={} | host cores: {host_cores} | best of {reps} runs",
        g.num_nodes(),
        g.num_edges()
    );
    println!("{:<8} {:>8} {:>12} {:>9}", "xi", "threads", "pre(s)", "speedup");
    for xi in [0.0, 1e-4] {
        let mut serial_s = f64::INFINITY;
        let mut serial_bear: Option<Bear> = None;
        for &threads in &[1usize, 2, 4] {
            let config = BearConfig { threads, drop_tolerance: xi, ..BearConfig::default() };
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let (bear, secs) = measure(|| Bear::new(&g, &config).expect("preprocess"));
                best = best.min(secs);
                last = Some(bear);
            }
            let bear = last.expect("reps >= 1");
            match &serial_bear {
                None => {
                    serial_s = best;
                    serial_bear = Some(bear);
                }
                Some(serial) => {
                    // The determinism guarantee the speedup rides on.
                    assert_eq!(serial.stats(), bear.stats(), "parallel result diverged");
                }
            }
            let speedup = serial_s / best;
            println!("{:<8} {:>8} {:>12.4} {:>8.2}x", xi, threads, best, speedup);
            let mut row = ResultRow::new("hub_and_spoke_120x24", "BEAR preprocess");
            row.param = Some(format!(
                "xi={xi} threads={threads} speedup={speedup:.3} host_cores={host_cores}"
            ));
            row.preprocess_s = Some(best);
            out.rows.push(row);
        }
    }
    if host_cores < 2 {
        println!(
            "NOTE: host grants a single core; multi-threaded timings cannot \
             beat serial here. Re-run on a multi-core host for real speedup."
        );
    }
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    out.write_json(&json_path).expect("write json");
    println!("wrote {json_path}");
}
