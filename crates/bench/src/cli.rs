//! Tiny flag parser for the figure binaries (no external CLI crate).
//!
//! Supported conventions: `--flag value` and `--flag` (boolean).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of tokens.
    pub fn parse(tokens: impl Iterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut tokens = tokens.peekable();
        while let Some(tok) = tokens.next() {
            if let Some(name) = tok.strip_prefix("--") {
                match tokens.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = tokens.next().unwrap();
                        args.values.insert(name.to_string(), value);
                    }
                    _ => args.switches.push(name.to_string()),
                }
            }
        }
        args
    }

    /// String value of `--name`. Accepts the name with or without the
    /// leading dashes — several figure binaries look flags up as
    /// `"--reps"` while the parser stores them stripped, which silently
    /// ignored those flags until the lookup normalized both spellings.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name.trim_start_matches('-')).map(|s| s.as_str())
    }

    /// Parsed value of `--name`, falling back to `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|s| s.parse().ok()).unwrap_or(default)
    }

    /// Whether the boolean switch `--name` was passed.
    pub fn has(&self, name: &str) -> bool {
        let name = name.trim_start_matches('-');
        self.switches.iter().any(|s| s == name) || self.values.contains_key(name)
    }
}

/// Shared experiment options parsed from the common flags:
/// `--datasets a,b,c`, `--seeds N`, `--budget-mb N`, `--json PATH`,
/// `--full` (use the full-size datasets instead of the small suite).
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Dataset names to run (already resolved against the registry).
    pub datasets: Vec<String>,
    /// Number of query seeds to average over.
    pub num_seeds: usize,
    /// Memory budget in bytes.
    pub budget_bytes: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl CommonOpts {
    /// Parses the common flags, with `default_datasets` when `--datasets`
    /// is absent.
    pub fn from_args(args: &Args, default_datasets: &[&str]) -> Self {
        let datasets = match args.get("datasets") {
            Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
            None => default_datasets.iter().map(|s| s.to_string()).collect(),
        };
        CommonOpts {
            datasets,
            num_seeds: args.get_or("seeds", 20),
            budget_bytes: args
                .get_or("budget-mb", crate::params::DEFAULT_BUDGET_BYTES / (1024 * 1024))
                * 1024
                * 1024,
            json: args.get("json").map(|s| s.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = parse(&["--seeds", "5", "--json", "out.json", "--full"]);
        assert_eq!(a.get("seeds"), Some("5"));
        assert_eq!(a.get_or("seeds", 0usize), 5);
        assert!(a.has("full"));
        assert!(!a.has("missing"));
    }

    /// Regression: the figure binaries look flags up with the dashes
    /// still attached (`get_or("--reps", ...)`); both spellings must
    /// resolve, or those flags are silently ignored.
    #[test]
    fn dashed_lookup_spelling_resolves() {
        let a = parse(&["--reps", "7", "--full"]);
        assert_eq!(a.get_or("--reps", 0usize), 7);
        assert_eq!(a.get_or("reps", 0usize), 7);
        assert!(a.has("--full"));
    }

    #[test]
    fn common_opts_defaults() {
        let a = parse(&[]);
        let o = CommonOpts::from_args(&a, &["x", "y"]);
        assert_eq!(o.datasets, vec!["x", "y"]);
        assert_eq!(o.num_seeds, 20);
        assert!(o.json.is_none());
    }

    #[test]
    fn common_opts_overrides() {
        let a = parse(&["--datasets", "a, b", "--seeds", "3", "--budget-mb", "1"]);
        let o = CommonOpts::from_args(&a, &["x"]);
        assert_eq!(o.datasets, vec!["a", "b"]);
        assert_eq!(o.num_seeds, 3);
        assert_eq!(o.budget_bytes, 1024 * 1024);
    }
}
