//! NB_LIN (Tong, Faloutsos & Pan, KAIS 2008): approximate the whole
//! `Ãᵀ` with a rank-`t` factorization `U Σ V` and answer queries with the
//! Sherman–Morrison–Woodbury identity.
//!
//! With `H = I − (1−c) Ãᵀ ≈ I − (1−c) U Σ V`,
//!
//! ```text
//! H⁻¹ ≈ I + U Λ V,   Λ = ( ((1−c)Σ)⁻¹ − V U )⁻¹
//! ```
//!
//! so a query is two thin matrix–vector products plus a `t × t` solve
//! folded into the precomputed `Λ`. Near-zero entries of `U` and `V` are
//! dropped at tolerance `ξ`, the same knob the paper sweeps in Figure 8.

use bear_core::rwr::{normalized_adjacency, validate_distribution, RwrConfig};
use bear_core::RwrSolver;
use bear_graph::Graph;
use bear_sparse::mem::MemoryUsage;
use bear_sparse::svd::randomized_svd;
use bear_sparse::{CsrMatrix, DenseLu, DenseMatrix, Error, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for NB_LIN.
#[derive(Debug, Clone, Copy)]
pub struct NbLinConfig {
    /// Restart probability and normalization.
    pub rwr: RwrConfig,
    /// Approximation rank `t` (Table 5 uses 100–1000 per dataset).
    pub rank: usize,
    /// Drop tolerance `ξ` applied to the stored `U` and `V`.
    pub drop_tolerance: f64,
    /// RNG seed for the randomized SVD sketch.
    pub seed: u64,
}

impl Default for NbLinConfig {
    fn default() -> Self {
        NbLinConfig { rwr: RwrConfig::default(), rank: 100, drop_tolerance: 0.0, seed: 0 }
    }
}

/// Preprocessed NB_LIN solver.
#[derive(Debug, Clone)]
pub struct NbLin {
    u: CsrMatrix,
    v: CsrMatrix,
    lambda: DenseMatrix,
    c: f64,
    n: usize,
}

/// Builds `Λ = (((1−c)Σ)⁻¹ − G)⁻¹` given the singular values and
/// `G = V M⁻¹ U` (for NB_LIN, `M = I`). Shared with B_LIN.
pub(crate) fn build_lambda(s: &[f64], g: &DenseMatrix, c: f64) -> Result<DenseMatrix> {
    let t = s.len();
    let mut core = DenseMatrix::zeros(t, t);
    for i in 0..t {
        for j in 0..t {
            core[(i, j)] = -g[(i, j)];
        }
        let scaled = (1.0 - c) * s[i];
        if scaled.abs() < 1e-12 {
            return Err(Error::SingularMatrix { at: i });
        }
        core[(i, i)] += 1.0 / scaled;
    }
    DenseLu::factor(&core)?.inverse()
}

/// Truncates an SVD to its numerically significant singular values.
pub(crate) fn effective_rank(s: &[f64]) -> usize {
    let cutoff = s.first().copied().unwrap_or(0.0) * 1e-10;
    s.iter().take_while(|&&v| v > cutoff && v > 1e-12).count()
}

impl NbLin {
    /// Preprocesses `g` at rank `config.rank`.
    pub fn new(g: &Graph, config: &NbLinConfig) -> Result<Self> {
        config.rwr.validate()?;
        let n = g.num_nodes();
        let at = normalized_adjacency(g, &config.rwr).transpose();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let svd = randomized_svd(&at, config.rank, 10.min(n), 2, &mut rng)?;
        let t = effective_rank(&svd.s);
        if t == 0 {
            return Err(Error::InvalidStructure(
                "adjacency has no significant singular values".into(),
            ));
        }

        // G = V U (t × t).
        let (u_dense, vt) = (&svd.u, &svd.vt);
        let mut g_mat = DenseMatrix::zeros(t, t);
        for i in 0..t {
            for j in 0..t {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += vt[(i, k)] * u_dense[(k, j)];
                }
                g_mat[(i, j)] = acc;
            }
        }
        let lambda = build_lambda(&svd.s[..t], &g_mat, config.rwr.c)?;

        // Store U (n × t) and V (t × n) sparsely after dropping.
        let xi = config.drop_tolerance.max(0.0);
        let mut u_trim = DenseMatrix::zeros(n, t);
        for i in 0..n {
            for j in 0..t {
                u_trim[(i, j)] = u_dense[(i, j)];
            }
        }
        let mut v_trim = DenseMatrix::zeros(t, n);
        for i in 0..t {
            for j in 0..n {
                v_trim[(i, j)] = vt[(i, j)];
            }
        }
        Ok(NbLin { u: u_trim.to_csr(xi), v: v_trim.to_csr(xi), lambda, c: config.rwr.c, n })
    }
}

impl RwrSolver for NbLin {
    fn name(&self) -> &'static str {
        "NB_LIN"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.n {
            return Err(Error::DimensionMismatch {
                op: "nb_lin query",
                lhs: (self.n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        // r = c (q + U Λ V q)
        let vq = self.v.matvec(q)?;
        let lvq = self.lambda.matvec(&vq)?;
        let ulvq = self.u.matvec(&lvq)?;
        Ok(q.iter().zip(&ulvq).map(|(a, b)| self.c * (a + b)).collect())
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn memory_bytes(&self) -> usize {
        self.u.memory_bytes() + self.v.memory_bytes() + self.lambda.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.u.nnz() + self.v.nnz() + self.lambda.nrows() * self.lambda.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bear_core::metrics::cosine_similarity;
    use bear_core::{Bear, BearConfig};

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn full_rank_approximation_is_nearly_exact() {
        // Rank >= n recovers the exact inverse via SMW.
        let g = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let config = NbLinConfig { rank: 6, ..NbLinConfig::default() };
        let nb = NbLin::new(&g, &config).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        for seed in 0..6 {
            let ra = nb.query(seed).unwrap();
            let rb = bear.query(seed).unwrap();
            for (a, b) in ra.iter().zip(&rb) {
                assert!((a - b).abs() < 1e-6, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn low_rank_approximation_is_directionally_right() {
        let g = undirected(
            12,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (6, 7),
                (6, 8),
                (6, 9),
                (9, 10),
                (10, 11),
            ],
        );
        let config = NbLinConfig { rank: 6, ..NbLinConfig::default() };
        let nb = NbLin::new(&g, &config).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let ra = nb.query(0).unwrap();
        let rb = bear.query(0).unwrap();
        assert!(cosine_similarity(&ra, &rb) > 0.9);
    }

    #[test]
    fn drop_tolerance_reduces_memory() {
        let g = undirected(
            10,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)],
        );
        let dense = NbLin::new(&g, &NbLinConfig { rank: 5, ..NbLinConfig::default() }).unwrap();
        let dropped = NbLin::new(
            &g,
            &NbLinConfig { rank: 5, drop_tolerance: 0.05, ..NbLinConfig::default() },
        )
        .unwrap();
        assert!(dropped.memory_bytes() <= dense.memory_bytes());
    }

    #[test]
    fn invalid_query_rejected() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let nb = NbLin::new(&g, &NbLinConfig { rank: 3, ..NbLinConfig::default() }).unwrap();
        assert!(nb.query(9).is_err());
        assert!(nb.query_distribution(&[1.0]).is_err());
    }
}
