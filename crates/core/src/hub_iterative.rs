//! Memory-lean variant with an iterative hub solve.
//!
//! On hub-heavy graphs (Citation-like, R-MAT p_ul ≈ 0.5), BEAR's space is
//! dominated by `L₂⁻¹`/`U₂⁻¹`, whose fill approaches `n₂²` (Table 4).
//! The follow-up line of work the paper spawned (BePI, SIGMOD 2017)
//! removes exactly this term by *not inverting* the Schur complement:
//! store the sparse `S` itself and solve `S r₂ = rhs` iteratively per
//! query. `S` inherits the diagonal dominance of `H`, so a Jacobi-
//! preconditioned BiCGSTAB converges in a handful of iterations.
//!
//! This module implements that variant on top of BEAR's preprocessing:
//! identical spoke-side machinery (`L₁⁻¹`, `U₁⁻¹`, `H₁₂`, `H₂₁`),
//! Schur-side storage reduced from `nnz(L₂⁻¹)+nnz(U₂⁻¹)` to `nnz(S)`.

use crate::precompute::BearConfig;
use crate::rwr::validate_distribution;
use crate::solver::RwrSolver;
use bear_graph::Graph;
use bear_sparse::mem::MemoryUsage;
use bear_sparse::solvers::{bicgstab, SolveOptions};
use bear_sparse::{CscMatrix, CsrMatrix, Error, Permutation, Result};

/// BEAR with an iterative (non-inverted) hub solve.
#[derive(Debug, Clone)]
pub struct BearHubIterative {
    l1_inv: CscMatrix,
    u1_inv: CscMatrix,
    /// The Schur complement itself (not inverted).
    s: CsrMatrix,
    h12: CsrMatrix,
    h21: CsrMatrix,
    perm: Permutation,
    n1: usize,
    n2: usize,
    c: f64,
    solve_opts: SolveOptions,
}

impl BearHubIterative {
    /// Preprocesses `g`: the same pipeline as [`crate::Bear::new`] up to the
    /// Schur complement (Algorithm 1 lines 1–7), but keeps `S` as-is
    /// instead of factoring and inverting it.
    pub fn new(g: &Graph, config: &BearConfig) -> Result<Self> {
        // `preprocess_to_schur` validates the config, so `drop_tolerance`
        // is finite and non-negative here.
        let parts = crate::precompute::preprocess_to_schur(g, config)?;
        let s = bear_sparse::sparsify::par_drop_tolerance_csr(
            &parts.s,
            config.drop_tolerance,
            config.effective_threads(),
        )?;
        Ok(BearHubIterative {
            l1_inv: parts.l1_inv,
            u1_inv: parts.u1_inv,
            s,
            h12: parts.h12,
            h21: parts.h21,
            perm: parts.perm,
            n1: parts.n1,
            n2: parts.n2,
            c: config.rwr.c,
            solve_opts: SolveOptions { rel_tolerance: 1e-12, max_iterations: 10_000 },
        })
    }

    /// Number of hubs.
    pub fn n_hubs(&self) -> usize {
        self.n2
    }

    /// Number of spokes.
    pub fn n_spokes(&self) -> usize {
        self.n1
    }
}

impl RwrSolver for BearHubIterative {
    fn name(&self) -> &'static str {
        "BEAR-HubIter"
    }

    fn query_distribution(&self, q: &[f64]) -> Result<Vec<f64>> {
        let n = self.n1 + self.n2;
        if q.len() != n {
            return Err(Error::DimensionMismatch {
                op: "bear hub-iterative query",
                lhs: (n, 1),
                rhs: (q.len(), 1),
            });
        }
        validate_distribution(q)?;
        let q_perm = self.perm.permute_vec(q)?;
        let (q1, q2) = q_perm.split_at(self.n1);

        // rhs = q₂ − H₂₁ U₁⁻¹ L₁⁻¹ q₁, then solve S r₂ = c·rhs.
        let t1 = self.l1_inv.matvec(q1)?;
        let t2 = self.u1_inv.matvec(&t1)?;
        let t3 = self.h21.matvec(&t2)?;
        let rhs: Vec<f64> = q2.iter().zip(&t3).map(|(a, b)| self.c * (a - b)).collect();
        let r2 = bicgstab(&self.s, &rhs, &self.solve_opts)?;

        // r₁ = U₁⁻¹ L₁⁻¹ (c q₁ − H₁₂ r₂)
        let h12_r2 = self.h12.matvec(&r2)?;
        let inner: Vec<f64> = q1.iter().zip(&h12_r2).map(|(a, b)| self.c * a - b).collect();
        let t4 = self.l1_inv.matvec(&inner)?;
        let r1 = self.u1_inv.matvec(&t4)?;

        let mut r_perm = r1;
        r_perm.extend_from_slice(&r2);
        self.perm.unpermute_vec(&r_perm)
    }

    fn num_nodes(&self) -> usize {
        self.n1 + self.n2
    }

    fn memory_bytes(&self) -> usize {
        self.l1_inv.memory_bytes()
            + self.u1_inv.memory_bytes()
            + self.s.memory_bytes()
            + self.h12.memory_bytes()
            + self.h21.memory_bytes()
    }

    fn precomputed_nnz(&self) -> usize {
        self.l1_inv.nnz() + self.u1_inv.nnz() + self.s.nnz() + self.h12.nnz() + self.h21.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::Bear;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    #[test]
    fn matches_exact_bear() {
        let g = undirected(
            9,
            &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (0, 6), (6, 7), (7, 8), (1, 2)],
        );
        let exact = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let hub_iter = BearHubIterative::new(&g, &BearConfig::exact(0.1)).unwrap();
        for seed in 0..9 {
            let re = exact.query(seed).unwrap();
            let ri = hub_iter.query(seed).unwrap();
            for (a, b) in re.iter().zip(&ri) {
                assert!((a - b).abs() < 1e-8, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn saves_memory_on_hub_heavy_graphs() {
        // A dense-ish core: most nodes become hubs, so L₂⁻¹/U₂⁻¹ fill in.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let n = 60;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.15) {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let hub_iter = BearHubIterative::new(&g, &BearConfig::exact(0.05)).unwrap();
        assert!(
            hub_iter.memory_bytes() < exact.memory_bytes(),
            "hub-iter {} bytes !< exact {} bytes",
            hub_iter.memory_bytes(),
            exact.memory_bytes()
        );
        // And still answers exactly (to solver tolerance).
        let re = exact.query(0).unwrap();
        let ri = hub_iter.query(0).unwrap();
        for (a, b) in re.iter().zip(&ri) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = BearHubIterative::new(&g, &BearConfig::exact(0.1)).unwrap();
        assert!(h.query(9).is_err());
        assert!(h.query_distribution(&[1.0]).is_err());
        assert_eq!(h.name(), "BEAR-HubIter");
        assert_eq!(h.n_hubs() + h.n_spokes(), 4);
    }
}
