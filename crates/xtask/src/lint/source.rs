//! Line-aware lexical model of a Rust source file.
//!
//! The build environment has no registry access, so the lint cannot lean
//! on `syn`; instead this module hand-rolls exactly as much lexing as the
//! rules need, while staying line-oriented so every finding carries a
//! `file:line` span:
//!
//! * string/char-literal *contents* and comments are blanked out of the
//!   per-line `code` text (so `"unwrap()"` in a message never trips L1),
//!   with comment text preserved separately for `lint:allow` parsing;
//! * a token stream (identifiers + single-char punctuation) with brace
//!   tracking recovers `fn` body spans, `#[cfg(test)]`/`#[test]` regions,
//!   and `enum` variant lists.
//!
//! Heuristics are documented where exact parsing is out of scope (e.g. a
//! `'x'` char literal vs. a `'a` lifetime); they are tuned to this
//! repository's style and pinned by the fixture suite in
//! `crates/xtask/tests/`.

/// One physical line of a source file after lexical blanking.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// Line text with comments removed and literal contents blanked;
    /// structure (quotes, braces, punctuation) is preserved.
    pub code: String,
    /// Concatenated comment text of the line (line and block comments),
    /// scanned for `lint:allow` directives.
    pub comment: String,
    /// Raw line text as it appears in the file (used for fingerprints).
    pub raw: String,
    /// Whether the line sits inside test-gated code (`#[cfg(test)]`,
    /// `#[test]`, or any attribute naming `test`).
    pub in_test: bool,
}

/// One token of the blanked code: an identifier/number word or a single
/// punctuation character.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token text (a whole word, or one punctuation char).
    pub text: String,
    /// 1-based line number the token starts on.
    pub line: usize,
    /// Whether the token is a word (identifier, keyword, or number).
    pub is_word: bool,
}

/// The span of one `fn` item.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// Token-stream index range of the body (between the braces,
    /// exclusive of the braces themselves).
    pub body_tokens: (usize, usize),
    /// Whether the function is test-gated.
    pub in_test: bool,
}

/// A parsed source file: lines, tokens, and recovered structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel_path: String,
    /// Physical lines, 0-indexed (line `n` of the file is `lines[n-1]`).
    pub lines: Vec<SourceLine>,
    /// Token stream over the blanked code.
    pub tokens: Vec<Token>,
    /// Every `fn` item with a body.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Parses `text` into the lexical model. `rel_path` is stored for
    /// reporting only.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let lines = blank_lines(text);
        let tokens = tokenize(&lines);
        let mut file =
            SourceFile { rel_path: rel_path.to_string(), lines, tokens, fns: Vec::new() };
        analyze_structure(&mut file);
        file
    }

    /// The raw text of 1-based line `n`, trimmed — the ratchet
    /// fingerprint for findings anchored at that line.
    pub fn fingerprint(&self, line: usize) -> String {
        self.lines.get(line.wrapping_sub(1)).map(|l| l.raw.trim().to_string()).unwrap_or_default()
    }

    /// Whether 1-based line `n` is test-gated.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.lines.get(line.wrapping_sub(1)).is_some_and(|l| l.in_test)
    }
}

/// Lexer state for the blanking pass.
enum State {
    /// Ordinary code.
    Normal,
    /// Inside `//`-style comment (ends at newline).
    LineComment,
    /// Inside `/* */` comment, tracking nesting depth.
    BlockComment(u32),
    /// Inside a `"..."` (or `b"..."`) string literal.
    Str,
    /// Inside a raw string literal with the given number of `#` marks.
    RawStr(usize),
}

/// Pass 1: split into lines with comments stripped and literal contents
/// blanked to spaces. Raw line text comes straight from `text.lines()`.
fn blank_lines(text: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            out.push(SourceLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                raw: String::new(),
                in_test: false,
            });
            i += 1;
            continue;
        }
        if c == '\r' {
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if let Some(hashes) = raw_string_open(&chars, i, &code) {
                    // `r"..."`, `r#"..."#`, `br"..."` — keep the prefix and
                    // quote in `code`, blank the contents.
                    let quote_at = chars[i..].iter().position(|&ch| ch == '"').unwrap_or(0);
                    for &ch in &chars[i..=i + quote_at] {
                        code.push(ch);
                    }
                    i += quote_at + 1;
                    state = State::RawStr(hashes);
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs. lifetime: `'\...'` and `'x'` are
                    // literals, everything else (`'a`, `'static`) is a
                    // lifetime and passes through as code.
                    if next == Some('\\') {
                        // Escaped char literal: blank until the closing quote.
                        code.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            code.push(' ');
                            i += if chars[i] == '\\' { 2 } else { 1 };
                        }
                        if chars.get(i) == Some(&'\'') {
                            code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if next == Some('\n') {
                        i += 1; // line continuation; newline handled above
                    } else {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Normal;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.trim().is_empty() || !comment.is_empty() {
        out.push(SourceLine { code, comment, raw: String::new(), in_test: false });
    }
    // Attach the untouched raw text of each line (fingerprint source).
    for (line, raw) in out.iter_mut().zip(text.lines()) {
        line.raw = raw.to_string();
    }
    out
}

/// Detects a raw-string opener (`r"`, `r#"`, `br"`, ...) at `chars[i]`,
/// returning the number of `#` marks. `code` is the blanked text so far
/// on this line, used to reject identifier suffixes like `var"`.
fn raw_string_open(chars: &[char], i: usize, code: &str) -> Option<usize> {
    let prev_is_word = code.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_');
    if prev_is_word {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Pass 2: word/punctuation tokens over the blanked code.
fn tokenize(lines: &[SourceLine]) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let number = idx + 1;
        let mut word = String::new();
        for c in line.code.chars() {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
            } else {
                if !word.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut word),
                        line: number,
                        is_word: true,
                    });
                }
                if !c.is_whitespace() {
                    tokens.push(Token { text: c.to_string(), line: number, is_word: false });
                }
            }
        }
        if !word.is_empty() {
            tokens.push(Token { text: word, line: number, is_word: true });
        }
    }
    tokens
}

/// Whether attribute text gates code to test builds. `test` as a word
/// anywhere in the attribute counts (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, loom))]`), except under `not(...)`, which gates
/// *production* code.
fn attr_is_test(attr: &str) -> bool {
    attr.split(|c: char| !(c.is_alphanumeric() || c == '_')).any(|w| w == "test" || w == "tests")
        && !attr.contains("not(")
}

/// Pass 3: brace-depth walk of the token stream recovering `fn` spans and
/// test regions, writing `in_test` back onto the lines.
fn analyze_structure(file: &mut SourceFile) {
    /// A `fn` item seen but whose body brace has not opened yet.
    struct PendingFn {
        name: String,
        start_line: usize,
        in_test: bool,
    }
    /// A `fn` item whose body is currently open.
    struct OpenFn {
        name: String,
        start_line: usize,
        body_start: usize,
        open_depth: usize,
        in_test: bool,
    }

    let mut depth = 0usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut pending_fn: Option<PendingFn> = None;
    let mut open_fns: Vec<OpenFn> = Vec::new();
    // Brace depths at which a test-gated region opened.
    let mut test_regions: Vec<usize> = Vec::new();
    // Set once a test-gating attribute is seen, consumed by the next
    // item's `{` (region) or `;` (item without a body).
    let mut pending_test_attr = false;
    let mut test_lines: Vec<usize> = Vec::new();

    let mut i = 0;
    let tokens = &file.tokens;
    while i < tokens.len() {
        let tok = &tokens[i];
        let in_test_now = !test_regions.is_empty() || pending_test_attr;
        if in_test_now {
            test_lines.push(tok.line);
        }
        match tok.text.as_str() {
            "#" if tokens.get(i + 1).is_some_and(|t| t.text == "[") => {
                // Collect the attribute text up to the matching `]`.
                let mut j = i + 2;
                let mut bracket = 1usize;
                let mut attr = String::new();
                while j < tokens.len() && bracket > 0 {
                    match tokens[j].text.as_str() {
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        t if bracket > 0 => {
                            attr.push_str(t);
                            attr.push(' ');
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if attr_is_test(&attr) {
                    pending_test_attr = true;
                }
                if !test_regions.is_empty() || pending_test_attr {
                    for t in &tokens[i..j] {
                        test_lines.push(t.line);
                    }
                }
                i = j;
                continue;
            }
            "fn" => {
                if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.is_word) {
                    pending_fn = Some(PendingFn {
                        name: name_tok.text.clone(),
                        start_line: tok.line,
                        in_test: !test_regions.is_empty() || pending_test_attr,
                    });
                }
            }
            "{" => {
                if let Some(p) = pending_fn.take() {
                    open_fns.push(OpenFn {
                        name: p.name,
                        start_line: p.start_line,
                        body_start: i + 1,
                        open_depth: depth,
                        in_test: p.in_test,
                    });
                }
                if pending_test_attr {
                    pending_test_attr = false;
                    test_regions.push(depth);
                }
                depth += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                    test_lines.push(tok.line);
                }
                if open_fns.last().is_some_and(|f| f.open_depth == depth) {
                    let f = open_fns.pop().expect("open fn checked above");
                    file.fns.push(FnSpan {
                        name: f.name,
                        start_line: f.start_line,
                        body_tokens: (f.body_start, i),
                        in_test: f.in_test,
                    });
                }
            }
            "(" => paren += 1,
            ")" => paren = paren.saturating_sub(1),
            "[" => bracket += 1,
            "]" => bracket = bracket.saturating_sub(1),
            ";" if paren == 0 && bracket == 0 => {
                // An item ended without a body (`#[cfg(test)] use ...;`,
                // trait method declaration): drop the pending markers. A
                // `;` inside parens or brackets (`[u8; 4]`) is not an
                // item terminator.
                pending_fn = None;
                pending_test_attr = false;
            }
            _ => {}
        }
        i += 1;
    }

    for line in test_lines {
        if let Some(l) = file.lines.get_mut(line - 1) {
            l.in_test = true;
        }
    }
}

/// Extracts the variant names of `enum <name>` from a parsed file, in
/// declaration order. Returns `None` if the enum is not found.
pub fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let tokens = &file.tokens;
    let mut i = 0;
    // Find `enum <name> {`.
    while i + 1 < tokens.len() {
        if tokens[i].text == "enum" && tokens[i + 1].text == name {
            break;
        }
        i += 1;
    }
    if i + 1 >= tokens.len() {
        return None;
    }
    let mut j = i + 2;
    while j < tokens.len() && tokens[j].text != "{" {
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // Walk the enum body at depth 1, skipping variant payloads
    // (parenthesised or braced fields) and attributes (bracketed).
    let mut variants = Vec::new();
    let mut brace = 1usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    // Previous structural token at variant scope; a variant name follows
    // `{` (body open), `,`, or `]` (attribute close).
    let mut prev_structural = "{".to_string();
    let mut k = j + 1;
    while k < tokens.len() && brace > 0 {
        let t = &tokens[k];
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => brace -= 1,
            "(" => paren += 1,
            ")" => paren = paren.saturating_sub(1),
            "[" => bracket += 1,
            "]" => bracket = bracket.saturating_sub(1),
            _ => {}
        }
        if brace == 1 && paren == 0 && bracket == 0 {
            if t.is_word && matches!(prev_structural.as_str(), "{" | "," | "]") {
                variants.push(t.text.clone());
            }
            prev_structural = t.text.clone();
        }
        k += 1;
    }
    Some(variants)
}
