//! L3 fixture: raw sparse constructors called outside bear-sparse (true
//! positives) and the audited path (true negatives). Never compiled —
//! parsed by the lint tests only.

/// True positive: `from_parts` bypasses the invariant audit.
pub fn tp_raw(rows: usize) -> Matrix {
    Matrix::from_parts(rows)
}

/// True negative: `try_from_parts` runs the full audit.
pub fn tn_audited(rows: usize) -> Option<Matrix> {
    Matrix::try_from_parts(rows).ok()
}

/// True negative: defining a local `from_parts` is not a call.
pub fn from_parts(n: usize) -> usize {
    n
}

#[cfg(test)]
mod tests {
    /// True negative: tests may construct raw parts directly.
    #[test]
    fn raw_in_tests_is_fine() {
        let _ = super::Matrix::from_parts(1);
    }
}
