//! Offline vendored stand-in for the [`loom`](https://crates.io/crates/loom)
//! model checker.
//!
//! The container this workspace builds in has no crates.io access, so this
//! crate reimplements the subset of loom's API that `bear-core`'s engine
//! models need: `loom::model`, `loom::thread::{spawn, JoinHandle, yield_now}`,
//! `loom::sync::{Arc, Mutex, Condvar}` and `loom::sync::atomic`.
//!
//! # How it works
//!
//! Each call to [`model`] runs the closure many times. Within one run,
//! every loom thread is a real OS thread, but a cooperative scheduler hands
//! out a single "run token": exactly one thread executes at a time, and it
//! yields the token at every *decision point* (mutex acquire, condvar
//! wait/notify, atomic access, spawn/join/yield). At each decision point the
//! scheduler records which threads were runnable and which one it chose;
//! after the run finishes, the checker backtracks depth-first over those
//! choices and replays the prefix to explore a different interleaving, until
//! the whole tree is exhausted (or [`model::Builder::max_iterations`] is hit).
//!
//! Differences from real loom, chosen to keep the state space small:
//!
//! - Atomics are modelled as sequentially consistent regardless of the
//!   `Ordering` argument (loom explores weaker orderings).
//! - Condvars never wake spuriously; `notify_one` wakes waiters in FIFO
//!   order. A waiter that is never notified stays blocked, which is exactly
//!   what makes lost-wakeup bugs show up as deadlocks.
//! - No partial-order reduction: equivalent interleavings are re-explored.
//!   Models should therefore stay small (2–3 threads, a handful of
//!   operations); [`model::Builder::preemption_bound`] prunes further.
//!
//! A run in which no thread can be scheduled while some thread is still
//! blocked is reported by panicking with a message starting with
//! `"loom: deadlock"`. A panic inside a model thread (a failed assertion)
//! aborts the run and is re-raised from [`model`] with its original payload.
//!
//! All loom objects ([`sync::Mutex`], [`sync::Condvar`], …) must be created
//! *inside* the model closure, so each exploration starts from fresh state.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used internally to unwind threads of an aborted run.
/// Never surfaces to the user: the original failure is re-raised instead.
const ABORT_PANIC: &str = "__loom_execution_aborted__";

#[derive(Clone, Debug, PartialEq)]
enum ThreadState {
    /// Can run whenever the scheduler picks it.
    Runnable,
    /// Waiting to acquire the mutex with this id; enabled once it is free.
    BlockedMutex(usize),
    /// Parked on a condvar; never enabled until a notify moves it to
    /// [`ThreadState::BlockedMutex`] on the mutex it must reacquire.
    BlockedCondvar {
        cv: usize,
        mutex: usize,
    },
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Debug, PartialEq)]
struct Decision {
    /// Threads that were schedulable at this point (after preemption
    /// bounding) — the DFS branches over this list.
    enabled: Vec<usize>,
    /// Index into `enabled` chosen on the current run.
    index: usize,
}

enum Abort {
    Deadlock(String),
    Panic,
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// Locked flag per registered mutex.
    mutexes: Vec<bool>,
    /// FIFO waiter queue per registered condvar.
    cv_waiters: Vec<VecDeque<usize>>,
    /// The thread currently holding the run token.
    active: usize,
    /// Decision trail: a replay prefix at the start of a run, extended as
    /// the run goes past it.
    trail: Vec<Decision>,
    /// Next position in `trail`.
    cursor: usize,
    /// Times the scheduler switched away from a still-runnable thread.
    preemptions: usize,
    abort: Option<Abort>,
    /// Original payload of the first real panic, re-raised by `model`.
    payload: Option<Box<dyn std::any::Any + Send>>,
    /// Threads not yet finished; the model waits for this to reach zero.
    live: usize,
}

struct Shared {
    state: StdMutex<SchedState>,
    turn: StdCondvar,
    preemption_bound: Option<usize>,
}

#[derive(Clone)]
struct Ctx {
    sched: StdArc<Shared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone()).expect("loom primitives may only be used inside loom::model")
}

impl Shared {
    fn enabled_raw(s: &SchedState) -> Vec<usize> {
        s.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                ThreadState::Runnable => true,
                ThreadState::BlockedMutex(m) => !s.mutexes[*m],
                ThreadState::BlockedJoin(j) => matches!(s.threads[*j], ThreadState::Finished),
                ThreadState::BlockedCondvar { .. } | ThreadState::Finished => false,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// A scheduling decision point: pick the next thread to run, hand it
    /// the token, and (unless `exiting`) block until this thread is
    /// scheduled again. Panics with [`ABORT_PANIC`] if the run was aborted.
    fn reschedule(&self, me: usize, exiting: bool) {
        let mut s = self.state.lock().unwrap();
        if s.abort.is_some() {
            self.turn.notify_all();
            drop(s);
            if exiting {
                return;
            }
            panic!("{ABORT_PANIC}");
        }
        let raw = Self::enabled_raw(&s);
        if raw.is_empty() {
            if !s.threads.iter().all(|t| matches!(t, ThreadState::Finished)) {
                s.abort = Some(Abort::Deadlock(format!(
                    "no schedulable thread; thread states: {:?}",
                    s.threads
                )));
            }
            self.turn.notify_all();
            drop(s);
            if exiting {
                return;
            }
            // `me` is blocked and nothing can ever unblock it.
            panic!("{ABORT_PANIC}");
        }
        // Bounded preemption: once the budget is spent, a thread that can
        // keep running does keep running (classic CHESS-style pruning).
        let me_enabled = raw.contains(&me);
        let effective = match self.preemption_bound {
            Some(bound) if me_enabled && s.preemptions >= bound => vec![me],
            _ => raw.clone(),
        };
        let index = if s.cursor < s.trail.len() {
            let d = &s.trail[s.cursor];
            if d.enabled != effective {
                drop(s);
                panic!(
                    "loom: nondeterministic replay — the model closure must be \
                     deterministic apart from scheduling"
                );
            }
            d.index
        } else {
            s.trail.push(Decision { enabled: effective.clone(), index: 0 });
            0
        };
        let chosen = effective[index];
        s.cursor += 1;
        if me_enabled && chosen != me {
            s.preemptions += 1;
        }
        s.active = chosen;
        self.turn.notify_all();
        if exiting || chosen == me {
            return;
        }
        while s.active != me && s.abort.is_none() {
            s = self.turn.wait(s).unwrap();
        }
        if s.abort.is_some() {
            drop(s);
            panic!("{ABORT_PANIC}");
        }
    }

    /// Blocks a freshly spawned thread until its first turn. Returns false
    /// if the run aborted before the thread ever ran.
    fn wait_for_turn(&self, me: usize) -> bool {
        let mut s = self.state.lock().unwrap();
        while s.active != me && s.abort.is_none() {
            s = self.turn.wait(s).unwrap();
        }
        s.abort.is_none()
    }

    /// Marks `me` finished, records a real panic (anything that is not the
    /// internal abort payload) and hands the token to the next thread.
    fn finish_thread(&self, me: usize, outcome: Result<(), Box<dyn std::any::Any + Send>>) {
        {
            let mut s = self.state.lock().unwrap();
            s.threads[me] = ThreadState::Finished;
            s.live -= 1;
            if let Err(payload) = outcome {
                let is_abort = payload.downcast_ref::<String>().map_or(false, |m| m == ABORT_PANIC)
                    || payload.downcast_ref::<&str>().map_or(false, |m| *m == ABORT_PANIC);
                if !is_abort && s.abort.is_none() {
                    s.abort = Some(Abort::Panic);
                    s.payload = Some(payload);
                }
            }
        }
        self.reschedule(me, true);
    }
}

/// Registers and starts one loom thread on a real OS thread. The closure
/// does not run until the scheduler grants the thread its first turn.
fn spawn_thread<F, T>(
    sched: &StdArc<Shared>,
    f: F,
) -> (usize, StdArc<StdMutex<Option<T>>>, std::thread::JoinHandle<()>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = {
        let mut s = sched.state.lock().unwrap();
        s.threads.push(ThreadState::Runnable);
        s.live += 1;
        s.threads.len() - 1
    };
    let slot = StdArc::new(StdMutex::new(None));
    let slot2 = StdArc::clone(&slot);
    let sched2 = StdArc::clone(sched);
    let os = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some(Ctx { sched: StdArc::clone(&sched2), tid }));
            if !sched2.wait_for_turn(tid) {
                sched2.finish_thread(tid, Ok(()));
                return;
            }
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot2.lock().unwrap() = Some(v);
                    sched2.finish_thread(tid, Ok(()));
                }
                Err(p) => sched2.finish_thread(tid, Err(p)),
            }
        })
        .expect("failed to spawn loom thread");
    (tid, slot, os)
}

pub mod model {
    //! Exploration configuration ([`Builder`]), mirroring loom's.

    use super::{resume_unwind, Abort, Decision, SchedState, Shared, StdArc, StdMutex};

    /// Configures and runs an exploration; [`crate::model`] is shorthand
    /// for `Builder::new().check(f)`.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum number of times the scheduler may switch away from a
        /// thread that could have kept running. `None` explores every
        /// interleaving. Seeded from `LOOM_MAX_PREEMPTIONS` if set.
        pub preemption_bound: Option<usize>,
        /// Hard cap on explored interleavings; exceeding it panics so a
        /// model that blows up is an error, not a silent truncation.
        /// Seeded from `LOOM_MAX_ITERATIONS` if set (default 250 000).
        pub max_iterations: usize,
    }

    impl Builder {
        /// A builder seeded from the `LOOM_MAX_PREEMPTIONS` /
        /// `LOOM_MAX_ITERATIONS` environment variables.
        pub fn new() -> Self {
            let env_usize = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
            Builder {
                preemption_bound: env_usize("LOOM_MAX_PREEMPTIONS"),
                max_iterations: env_usize("LOOM_MAX_ITERATIONS").unwrap_or(250_000),
            }
        }

        /// Exhaustively explores interleavings of `f`. Panics on the first
        /// failing execution: assertion panics are re-raised with their
        /// original payload, deadlocks panic with `"loom: deadlock"`.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            let f: StdArc<dyn Fn() + Send + Sync> = StdArc::new(f);
            let mut prefix: Vec<Decision> = Vec::new();
            let mut iterations = 0usize;
            loop {
                iterations += 1;
                assert!(
                    iterations <= self.max_iterations,
                    "loom: exceeded max_iterations ({}); shrink the model or set a preemption bound",
                    self.max_iterations
                );
                let sched = StdArc::new(Shared {
                    state: StdMutex::new(SchedState {
                        threads: Vec::new(),
                        mutexes: Vec::new(),
                        cv_waiters: Vec::new(),
                        active: 0,
                        trail: prefix.clone(),
                        cursor: 0,
                        preemptions: 0,
                        abort: None,
                        payload: None,
                        live: 0,
                    }),
                    turn: super::StdCondvar::new(),
                    preemption_bound: self.preemption_bound,
                });
                let f2 = StdArc::clone(&f);
                let (_tid, _slot, os) = super::spawn_thread(&sched, move || f2());
                let trail = {
                    let mut s = sched.state.lock().unwrap();
                    while s.live > 0 {
                        s = sched.turn.wait(s).unwrap();
                    }
                    match s.abort.take() {
                        Some(Abort::Panic) => {
                            let p = s.payload.take().expect("panic abort without payload");
                            drop(s);
                            let _ = os.join();
                            resume_unwind(p);
                        }
                        Some(Abort::Deadlock(msg)) => {
                            drop(s);
                            let _ = os.join();
                            panic!("loom: deadlock after {iterations} iteration(s): {msg}");
                        }
                        None => {}
                    }
                    std::mem::take(&mut s.trail)
                };
                let _ = os.join();
                // Depth-first backtrack: advance the deepest decision that
                // still has an untried alternative; drop everything after it.
                let mut trail = trail;
                loop {
                    match trail.last_mut() {
                        None => return, // fully explored
                        Some(d) if d.index + 1 < d.enabled.len() => {
                            d.index += 1;
                            break;
                        }
                        Some(_) => {
                            trail.pop();
                        }
                    }
                }
                prefix = trail;
            }
        }
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// Explores every interleaving of `f` with the default [`model::Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

pub mod thread {
    //! Model-checked replacement for `std::thread`.

    use super::{ctx, ThreadState};

    /// Handle to a loom thread; mirrors `std::thread::JoinHandle`.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        tid: usize,
        slot: super::StdArc<super::StdMutex<Option<T>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    /// Spawns a loom thread. A decision point: the child may or may not run
    /// before the spawner's next operation.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let c = ctx();
        let (tid, slot, os) = super::spawn_thread(&c.sched, f);
        c.sched.reschedule(c.tid, false);
        JoinHandle { tid, slot, os: Some(os) }
    }

    /// Yields the run token: a pure decision point.
    pub fn yield_now() {
        let c = ctx();
        c.sched.reschedule(c.tid, false);
    }

    impl<T> JoinHandle<T> {
        /// Blocks until the thread finishes, returning its result. If the
        /// thread panicked, the whole model run has already been aborted,
        /// so the `Err` arm mirrors `std` only in type.
        pub fn join(mut self) -> std::thread::Result<T> {
            let c = ctx();
            loop {
                c.sched.reschedule(c.tid, false);
                let mut s = c.sched.state.lock().unwrap();
                if matches!(s.threads[self.tid], ThreadState::Finished) {
                    s.threads[c.tid] = ThreadState::Runnable;
                    break;
                }
                s.threads[c.tid] = ThreadState::BlockedJoin(self.tid);
            }
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            match self.slot.lock().unwrap().take() {
                Some(v) => Ok(v),
                None => Err(Box::new("loom: joined thread panicked")),
            }
        }
    }
}

pub mod sync {
    //! Model-checked replacements for `std::sync` primitives.

    use std::cell::UnsafeCell;
    use std::ops::{Deref, DerefMut};
    pub use std::sync::Arc;
    use std::sync::LockResult;

    use super::{ctx, ThreadState};

    /// Model-checked mutex with the `std::sync::Mutex` API (never poisons).
    #[derive(Debug)]
    pub struct Mutex<T> {
        id: usize,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler guarantees at most one thread holds the run
    // token at a time, and `lock` only hands out a guard to the token
    // holder after marking the mutex held — so `data` is never aliased
    // mutably across threads.
    unsafe impl<T: Send> Send for Mutex<T> {}
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Registers a mutex with the current model run. Must be called
        /// inside `loom::model`.
        pub fn new(data: T) -> Self {
            let c = ctx();
            let id = {
                let mut s = c.sched.state.lock().unwrap();
                s.mutexes.push(false);
                s.mutexes.len() - 1
            };
            Mutex { id, data: UnsafeCell::new(data) }
        }

        /// Acquires the mutex; a decision point, blocking while held
        /// elsewhere. Never returns `Err`: model mutexes do not poison.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let c = ctx();
            loop {
                c.sched.reschedule(c.tid, false);
                let mut s = c.sched.state.lock().unwrap();
                if !s.mutexes[self.id] {
                    s.mutexes[self.id] = true;
                    s.threads[c.tid] = ThreadState::Runnable;
                    return Ok(MutexGuard { mutex: self, defused: false });
                }
                s.threads[c.tid] = ThreadState::BlockedMutex(self.id);
            }
        }
    }

    /// RAII guard returned by [`Mutex::lock`].
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        /// Set by `Condvar::wait`, which releases the mutex by hand.
        defused: bool,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: guard existence implies this thread holds the mutex.
            unsafe { &*self.mutex.data.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as for `Deref`, plus `&mut self` prevents aliasing.
            unsafe { &mut *self.mutex.data.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.defused {
                return;
            }
            let c = ctx();
            let mut s = c.sched.state.lock().unwrap();
            s.mutexes[self.mutex.id] = false;
        }
    }

    /// Model-checked condition variable. No spurious wakeups; FIFO notify
    /// order. A waiter that is never notified deadlocks the model — which
    /// is how lost-wakeup bugs are caught.
    #[derive(Debug)]
    pub struct Condvar {
        id: usize,
    }

    impl Condvar {
        /// Registers a condvar with the current model run.
        pub fn new() -> Self {
            let c = ctx();
            let id = {
                let mut s = c.sched.state.lock().unwrap();
                s.cv_waiters.push(std::collections::VecDeque::new());
                s.cv_waiters.len() - 1
            };
            Condvar { id }
        }

        /// Atomically releases the guard's mutex and parks until notified,
        /// then reacquires. Never returns `Err`.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let c = ctx();
            let mutex = guard.mutex;
            {
                let mut s = c.sched.state.lock().unwrap();
                s.mutexes[mutex.id] = false;
                s.cv_waiters[self.id].push_back(c.tid);
                s.threads[c.tid] = ThreadState::BlockedCondvar { cv: self.id, mutex: mutex.id };
            }
            let mut guard = guard;
            guard.defused = true;
            drop(guard);
            // Parked until a notify moves this thread to BlockedMutex and
            // the scheduler picks it with the mutex free; then reacquire.
            loop {
                c.sched.reschedule(c.tid, false);
                let mut s = c.sched.state.lock().unwrap();
                let parked = matches!(s.threads[c.tid], ThreadState::BlockedCondvar { .. });
                if !parked && !s.mutexes[mutex.id] {
                    s.mutexes[mutex.id] = true;
                    s.threads[c.tid] = ThreadState::Runnable;
                    return Ok(MutexGuard { mutex, defused: false });
                }
            }
        }

        /// Wakes the longest-parked waiter, if any. A decision point.
        pub fn notify_one(&self) {
            let c = ctx();
            c.sched.reschedule(c.tid, false);
            let mut s = c.sched.state.lock().unwrap();
            if let Some(t) = s.cv_waiters[self.id].pop_front() {
                if let ThreadState::BlockedCondvar { mutex, .. } = s.threads[t] {
                    s.threads[t] = ThreadState::BlockedMutex(mutex);
                }
            }
        }

        /// Wakes every parked waiter. A decision point.
        pub fn notify_all(&self) {
            let c = ctx();
            c.sched.reschedule(c.tid, false);
            let mut s = c.sched.state.lock().unwrap();
            while let Some(t) = s.cv_waiters[self.id].pop_front() {
                if let ThreadState::BlockedCondvar { mutex, .. } = s.threads[t] {
                    s.threads[t] = ThreadState::BlockedMutex(mutex);
                }
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    pub mod atomic {
        //! Model-checked atomics. Every access is a decision point; all
        //! orderings are strengthened to sequential consistency.

        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::Ordering::SeqCst;

        use crate::ctx;

        fn decision_point() {
            let c = ctx();
            c.sched.reschedule(c.tid, false);
        }

        macro_rules! atomic_int {
            ($(#[$meta:meta])* $name:ident, $std:ty, $int:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates a new atomic (no decision point).
                    pub const fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Sequentially consistent load; a decision point.
                    pub fn load(&self, _order: Ordering) -> $int {
                        decision_point();
                        self.0.load(SeqCst)
                    }

                    /// Sequentially consistent store; a decision point.
                    pub fn store(&self, v: $int, _order: Ordering) {
                        decision_point();
                        self.0.store(v, SeqCst)
                    }

                    /// Sequentially consistent swap; a decision point.
                    pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                        decision_point();
                        self.0.swap(v, SeqCst)
                    }

                    /// Sequentially consistent add; a decision point.
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        decision_point();
                        self.0.fetch_add(v, SeqCst)
                    }

                    /// Sequentially consistent max; a decision point.
                    pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                        decision_point();
                        self.0.fetch_max(v, SeqCst)
                    }
                }
            };
        }

        atomic_int!(
            /// Model-checked `AtomicU64`.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        atomic_int!(
            /// Model-checked `AtomicUsize`.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        /// Model-checked `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic (no decision point).
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Sequentially consistent load; a decision point.
            pub fn load(&self, _order: Ordering) -> bool {
                decision_point();
                self.0.load(SeqCst)
            }

            /// Sequentially consistent store; a decision point.
            pub fn store(&self, v: bool, _order: Ordering) {
                decision_point();
                self.0.store(v, SeqCst)
            }

            /// Sequentially consistent swap; a decision point.
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                decision_point();
                self.0.swap(v, SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Condvar, Mutex};
    use super::thread;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_counter_is_consistent() {
        super::model(|| {
            let m = std::sync::Arc::new(Mutex::new(0u32));
            let m2 = std::sync::Arc::clone(&m);
            let h = thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            });
            *m.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn unnotified_condvar_wait_is_reported_as_deadlock() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let m = Mutex::new(());
                let cv = Condvar::new();
                let g = m.lock().unwrap();
                let _g = cv.wait(g).unwrap(); // nobody will ever notify
            });
        }));
        let msg = match r {
            Err(p) => *p.downcast::<String>().unwrap(),
            Ok(()) => panic!("model unexpectedly succeeded"),
        };
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }
}
