//! Anomaly detection with RWR (Sun et al., ICDM 2005): in a graph of
//! tight communities, a node whose edges scatter across many communities
//! is anomalous. Score each node by the *concentration* of its RWR
//! neighborhood — normal nodes put most restart mass on a few close
//! neighbors; an anomalous bridge spreads it thin.
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use bear_core::{Bear, BearConfig};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use bear_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Concentration of an RWR distribution: the score mass captured by the
/// ten best-ranked nodes other than the seed. High = normal (tight
/// neighborhood), low = anomalous (scattered neighborhood).
fn concentration(scores: &[f64], seed: usize) -> f64 {
    let mut others: Vec<f64> =
        scores.iter().enumerate().filter(|&(u, _)| u != seed).map(|(_, &s)| s).collect();
    others.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = others.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    others.iter().take(10).sum::<f64>() / total
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let base = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 5,
            num_caves: 60,
            max_cave_size: 10,
            cave_density: 0.5,
            hub_links: 1,
            hub_density: 0.4,
        },
        &mut rng,
    );

    // Inject an anomaly: a new node with random edges into 15 different
    // parts of the graph (a spammer / fraudster pattern).
    let n = base.num_nodes();
    let anomaly = n;
    let mut edges: Vec<(usize, usize)> = base.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    for _ in 0..15 {
        let target = rng.gen_range(5..n); // skip the hubs
        edges.push((anomaly, target));
        edges.push((target, anomaly));
    }
    let graph = Graph::from_edges(n + 1, &edges).expect("graph with anomaly");
    println!(
        "graph: {} nodes ({} is the injected anomaly), {} edges",
        graph.num_nodes(),
        anomaly,
        graph.num_edges()
    );

    let bear = Bear::new(&graph, &BearConfig::exact(0.3)).expect("preprocessing");

    // Score the anomaly and a sample of normal cave nodes.
    let mut sample: Vec<usize> = (5..n).step_by(17).take(40).collect();
    sample.push(anomaly);
    let mut scored: Vec<(usize, f64)> =
        sample.iter().map(|&u| (u, concentration(&bear.query(u).expect("query"), u))).collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("\nmost anomalous (lowest neighborhood concentration) first:");
    for (u, c) in scored.iter().take(5) {
        let marker = if *u == anomaly { "  <-- injected anomaly" } else { "" };
        println!("  node {u}: concentration {c:.4}{marker}");
    }
    let rank = scored.iter().position(|&(u, _)| u == anomaly).unwrap();
    println!("\ninjected anomaly ranked #{} of {} sampled nodes", rank + 1, scored.len());
    assert!(rank < 3, "anomaly not detected (rank {rank})");
    println!("anomaly surfaces in the top 3 ✓");
}
