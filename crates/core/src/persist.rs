//! Persistence of BEAR's precomputed index.
//!
//! Preprocessing is the expensive phase; a production deployment computes
//! it once and serves queries from many processes, so the on-disk index
//! is both a performance artifact and a durability liability: a torn
//! write or a flipped bit must never reach the query path. This module
//! provides:
//!
//! * **Format v2 (`BEARIDX2`)** — the current write format. Ten framed
//!   sections (`tag [4] | len u64 LE | payload | crc32 u32 LE`), one per
//!   logical component (metadata, permutation, partition arrays, the six
//!   matrices), followed by a 20-byte trailer
//!   (`"BEARTRL2" | whole-file crc32 | file length`). The trailer is
//!   verified before any payload is parsed, so truncation and bit rot
//!   fail fast with [`bear_sparse::Error::CorruptIndex`] instead of
//!   feeding damaged bytes to the structural validators.
//! * **Crash-safe writes** — [`Bear::save`] builds the image in memory,
//!   writes it to a hidden temp file *in the target directory*, fsyncs
//!   the file, atomically renames it over the destination, and fsyncs
//!   the directory. A crash at any point leaves either the old index or
//!   the new one, never a half-written hybrid under the real name.
//! * **Legacy reads** — [`Bear::load`] still reads v1 (`BEARIDX1`)
//!   files, so indexes written by earlier binaries keep working; only
//!   the writer moved to v2.
//! * **Quarantine** — [`Bear::load_or_quarantine`] renames an artifact
//!   that fails integrity checks to `<path>.corrupt` so operators can
//!   inspect the bytes offline and a retry loop cannot re-serve it.
//! * **Offline verification** — [`verify_index`] replays the full load
//!   validation and returns an [`IndexReport`] for the
//!   `bear verify-index` subcommand.
//!
//! Every load-path failure — framing, checksum, or a payload that parses
//! but violates a structural invariant — is reported as
//! `Error::CorruptIndex { section, detail }` naming the section that
//! failed. The crash-injection suite in
//! `crates/core/tests/crash_injection.rs` sweeps truncations and bit
//! flips over real images to hold that contract.

use crate::precompute::Bear;
use bear_sparse::{CscMatrix, CsrMatrix, Error, Permutation, Result};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_V1: &[u8; 8] = b"BEARIDX1";
const MAGIC_V2: &[u8; 8] = b"BEARIDX2";
const TRAILER_MAGIC: &[u8; 8] = b"BEARTRL2";
/// Trailer layout: magic (8) + whole-file crc32 (4) + file length (8).
const TRAILER_LEN: usize = 20;
/// Section frame overhead: tag (4) + payload length (8) + payload crc (4).
const FRAME_OVERHEAD: usize = 16;

/// The ten v2 sections, in file order: `(tag, section name)`. The name
/// is what `Error::CorruptIndex { section, .. }` reports.
const SECTIONS: [(&[u8; 4], &str); 10] = [
    (b"META", "meta"),
    (b"PERM", "perm"),
    (b"BSIZ", "block_sizes"),
    (b"DEGS", "degrees"),
    (b"L1IV", "l1_inv"),
    (b"U1IV", "u1_inv"),
    (b"L2IV", "l2_inv"),
    (b"U2IV", "u2_inv"),
    (b"H12M", "h12"),
    (b"H21M", "h21"),
];

fn io_err(e: std::io::Error) -> Error {
    Error::InvalidStructure(format!("index io error: {e}"))
}

fn corrupt(section: &'static str, detail: impl Into<String>) -> Error {
    Error::CorruptIndex { section, detail: detail.into() }
}

/// Maps any non-`CorruptIndex` error (structural validation, bounded-read
/// truncation, ...) into `CorruptIndex` for `section`, preserving the
/// inner message as the detail. Already-typed corruption passes through
/// so the most specific section wins.
fn wrap(section: &'static str) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::CorruptIndex { .. } => e,
        other => corrupt(section, other.to_string()),
    }
}

/// Converts an on-disk `u64` (length, dimension, or index) to `usize`,
/// returning a typed error when it does not fit. On 32-bit targets a
/// plain `as usize` would silently truncate an oversized value into a
/// *valid-looking* small one, turning a corrupt file into wrong answers
/// instead of a load failure.
fn checked_usize(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| {
        Error::InvalidStructure(format!("corrupt index: {what} {v} does not fit in usize"))
    })
}

/// Decodes 8 little-endian bytes. Callers always pass exactly 8 bytes
/// (sliced via bounds-checked cursors).
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    u64::from_le_bytes(a)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(b);
    u32::from_le_bytes(a)
}

// ---------------------------------------------------------------------------
// v2 writer
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Raw (unprefixed) `u64` array — the section frame already carries the
/// byte length, so PERM/BSIZ/DEGS payloads need no inner prefix.
fn push_raw_u64s(out: &mut Vec<u8>, data: &[usize]) {
    for &v in data {
        push_u64(out, v as u64);
    }
}

/// Length-prefixed `u64` array, used *inside* matrix payloads where
/// several arrays share one frame.
fn push_usize_array(out: &mut Vec<u8>, data: &[usize]) {
    push_u64(out, data.len() as u64);
    push_raw_u64s(out, data);
}

fn push_f64_array(out: &mut Vec<u8>, data: &[f64]) {
    push_u64(out, data.len() as u64);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Shared CSC/CSR payload: `nrows | ncols | indptr | indices | values`.
fn matrix_payload(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
) -> Vec<u8> {
    let mut p = Vec::with_capacity(16 + 8 * (indptr.len() + indices.len() + values.len() + 3));
    push_u64(&mut p, nrows as u64);
    push_u64(&mut p, ncols as u64);
    push_usize_array(&mut p, indptr);
    push_usize_array(&mut p, indices);
    push_f64_array(&mut p, values);
    p
}

fn push_section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    push_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crate::crc32::crc32(payload).to_le_bytes());
}

impl Bear {
    /// Serializes the index as a complete v2 image (sections + trailer),
    /// ready to be written atomically.
    fn to_v2_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(24);
        push_u64(&mut meta, self.n1 as u64);
        push_u64(&mut meta, self.n2 as u64);
        meta.extend_from_slice(&self.c.to_le_bytes());

        let mut perm = Vec::new();
        push_raw_u64s(&mut perm, self.perm.as_new_to_old());
        let mut bsiz = Vec::new();
        push_raw_u64s(&mut bsiz, &self.block_sizes);
        let mut degs = Vec::new();
        push_raw_u64s(&mut degs, &self.degrees);

        let csc = |m: &CscMatrix| {
            matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values())
        };
        let csr = |m: &CsrMatrix| {
            matrix_payload(m.nrows(), m.ncols(), m.indptr(), m.indices(), m.values())
        };
        let payloads: [(usize, Vec<u8>); 10] = [
            (0, meta),
            (1, perm),
            (2, bsiz),
            (3, degs),
            (4, csc(&self.l1_inv)),
            (5, csc(&self.u1_inv)),
            (6, csc(&self.l2_inv)),
            (7, csc(&self.u2_inv)),
            (8, csr(&self.h12)),
            (9, csr(&self.h21)),
        ];

        let body: usize =
            payloads.iter().map(|(_, p)| p.len() + FRAME_OVERHEAD).sum::<usize>() + MAGIC_V2.len();
        let mut out = Vec::with_capacity(body + TRAILER_LEN);
        out.extend_from_slice(MAGIC_V2);
        for (i, payload) in &payloads {
            push_section(&mut out, SECTIONS[*i].0, payload);
        }

        let trailer_off = out.len();
        let file_crc = crate::crc32::crc32(&out);
        out.extend_from_slice(TRAILER_MAGIC);
        out.extend_from_slice(&file_crc.to_le_bytes());
        push_u64(&mut out, (trailer_off + TRAILER_LEN) as u64);
        out
    }
}

// ---------------------------------------------------------------------------
// Crash-safe write
// ---------------------------------------------------------------------------

/// Under the `failpoints` feature, an armed `TruncateAt(k)` at `site`
/// cuts the bytes to their first `k` — the torn-write half of a
/// simulated crash. Without the feature (or an arming) this is identity.
#[cfg(feature = "failpoints")]
fn injected_prefix<'a>(site: &str, bytes: &'a [u8]) -> &'a [u8] {
    match crate::failpoints::armed(site) {
        Some(crate::failpoints::FailAction::TruncateAt(k)) => {
            let k = usize::try_from(k).unwrap_or(usize::MAX).min(bytes.len());
            &bytes[..k]
        }
        _ => bytes,
    }
}

#[cfg(not(feature = "failpoints"))]
fn injected_prefix<'a>(_site: &str, bytes: &'a [u8]) -> &'a [u8] {
    bytes
}

/// Under the `failpoints` feature, `persist::save::torn` armed with
/// `TruncateAt`/`BitFlip` corrupts the already-synced temp file *and
/// lets the rename proceed* — a lying disk: save reports success, the
/// damage is only discoverable at load time.
#[cfg(feature = "failpoints")]
fn apply_torn_injection(tmp: &Path) -> Result<()> {
    use crate::failpoints::{armed, FailAction};
    match armed("persist::save::torn") {
        Some(FailAction::TruncateAt(k)) => {
            let data = std::fs::read(tmp).map_err(io_err)?;
            let k = usize::try_from(k).unwrap_or(usize::MAX).min(data.len());
            std::fs::write(tmp, &data[..k]).map_err(io_err)?;
        }
        Some(FailAction::BitFlip(bit)) => {
            let mut data = std::fs::read(tmp).map_err(io_err)?;
            if !data.is_empty() {
                let byte = usize::try_from(bit / 8).unwrap_or(0) % data.len();
                data[byte] ^= 1 << (bit % 8);
                std::fs::write(tmp, &data).map_err(io_err)?;
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(not(feature = "failpoints"))]
fn apply_torn_injection(_tmp: &Path) -> Result<()> {
    Ok(())
}

/// The ordered steps of the atomic write protocol. Failpoint sites mark
/// each crash window; the caller cleans up the temp file on error.
fn write_atomic_steps(dir: &Path, tmp: &Path, path: &Path, bytes: &[u8]) -> Result<()> {
    crate::fail_point!("persist::save::write");
    let to_write = injected_prefix("persist::save::write", bytes);
    let mut file = std::fs::File::create(tmp).map_err(io_err)?;
    file.write_all(to_write).map_err(io_err)?;
    if to_write.len() != bytes.len() {
        // The injected torn write doubles as the crash itself: the temp
        // file holds a prefix and the process "dies" before the rename.
        return Err(Error::InvalidStructure(
            "failpoint 'persist::save::write' injected torn write".into(),
        ));
    }
    crate::fail_point!("persist::save::sync");
    // fsync the payload before the rename: rename-before-data-reaches-disk
    // is exactly the reordering that turns a crash into a corrupt index.
    file.sync_all().map_err(io_err)?;
    drop(file);
    apply_torn_injection(tmp)?;
    crate::fail_point!("persist::save::rename");
    std::fs::rename(tmp, path).map_err(io_err)?;
    // fsync the directory so the rename (the commit point) is durable too.
    let dirf = std::fs::File::open(dir).map_err(io_err)?;
    dirf.sync_all().map_err(io_err)?;
    Ok(())
}

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, fsync, atomic rename, directory fsync. On any error the
/// temp file is removed (best-effort) and the previous `path` contents —
/// if any — are untouched.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let file_name = path.file_name().ok_or_else(|| Error::InvalidConfig {
        param: "path",
        reason: format!("index path {} has no file name", path.display()),
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    // Same directory as the target: rename(2) is only atomic within a
    // filesystem, and a temp file elsewhere could cross a mount boundary.
    let tmp = dir.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let result = write_atomic_steps(&dir, &tmp, path, bytes);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// v2 reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one section payload. Every read reports
/// the owning section on failure, so a truncated inner array surfaces as
/// `CorruptIndex { section: "h12", .. }` rather than a generic error.
struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        SectionReader { bytes, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            corrupt(
                self.section,
                format!(
                    "payload truncated: needed {n} bytes at offset {}, payload is {} bytes",
                    self.pos,
                    self.bytes.len()
                ),
            )
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(le_u64(self.take(8)?))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes({
            let mut a = [0u8; 8];
            a.copy_from_slice(self.take(8)?);
            a
        }))
    }

    /// Remaining unread payload bytes.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Validates a length prefix of `len` 8-byte elements against the
    /// remaining payload *before* any allocation.
    fn check_len(&self, len: u64) -> Result<()> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| corrupt(self.section, format!("corrupt length prefix {len}")))?;
        if bytes > self.remaining() as u64 {
            return Err(corrupt(
                self.section,
                format!(
                    "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                    self.remaining()
                ),
            ));
        }
        Ok(())
    }

    fn usize_array(&mut self) -> Result<Vec<usize>> {
        let len = self.u64()?;
        self.check_len(len)?;
        let len = checked_usize(len, "array length").map_err(wrap(self.section))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(checked_usize(self.u64()?, "array element").map_err(wrap(self.section))?);
        }
        Ok(out)
    }

    fn f64_array(&mut self) -> Result<Vec<f64>> {
        let len = self.u64()?;
        self.check_len(len)?;
        let len = checked_usize(len, "array length").map_err(wrap(self.section))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Rejects trailing garbage — a payload longer than its content
    /// means the frame length lies about the structure inside it.
    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(
                self.section,
                format!("{} unconsumed bytes at end of payload", self.bytes.len() - self.pos),
            ));
        }
        Ok(())
    }
}

/// Verifies the trailer and section framing of a v2 image and returns
/// the ten payload slices in [`SECTIONS`] order. Checksums (whole-file,
/// then per-section) are validated here, before any payload parsing.
fn v2_frames(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    let total = bytes.len();
    if total < MAGIC_V2.len() + TRAILER_LEN {
        return Err(corrupt(
            "trailer",
            format!("file too short ({total} bytes) to hold magic and trailer"),
        ));
    }
    let trailer_off = total - TRAILER_LEN;
    let trailer = &bytes[trailer_off..];
    if &trailer[..8] != TRAILER_MAGIC {
        return Err(corrupt("trailer", "trailer magic missing (torn or truncated write)"));
    }
    let stored_len = le_u64(&trailer[12..20]);
    if stored_len != total as u64 {
        return Err(corrupt(
            "trailer",
            format!("trailer records a {stored_len}-byte file, actual size is {total}"),
        ));
    }
    let stored_crc = le_u32(&trailer[8..12]);
    let actual_crc = crate::crc32::crc32(&bytes[..trailer_off]);
    if stored_crc != actual_crc {
        return Err(corrupt(
            "trailer",
            format!(
                "whole-file checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        ));
    }

    let mut pos = MAGIC_V2.len();
    let mut frames = Vec::with_capacity(SECTIONS.len());
    for (tag, name) in SECTIONS {
        let hdr_end = pos + 12;
        if hdr_end > trailer_off {
            return Err(corrupt(name, "section header truncated"));
        }
        let found = &bytes[pos..pos + 4];
        if found != tag.as_slice() {
            return Err(corrupt(
                name,
                format!(
                    "section tag mismatch: expected {:?}, found {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(found)
                ),
            ));
        }
        let len = checked_usize(le_u64(&bytes[pos + 4..pos + 12]), "section length")
            .map_err(wrap(name))?;
        let bounds = hdr_end
            .checked_add(len)
            .and_then(|payload_end| {
                payload_end.checked_add(4).map(|crc_end| (payload_end, crc_end))
            })
            .filter(|&(_, crc_end)| crc_end <= trailer_off);
        let Some((payload_end, crc_end)) = bounds else {
            return Err(corrupt(name, format!("section length {len} exceeds file bounds")));
        };
        let payload = &bytes[hdr_end..payload_end];
        let stored = le_u32(&bytes[payload_end..crc_end]);
        let actual = crate::crc32::crc32(payload);
        if stored != actual {
            return Err(corrupt(
                name,
                format!(
                    "section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            ));
        }
        frames.push(payload);
        pos = crc_end;
    }
    if pos != trailer_off {
        return Err(corrupt(
            "trailer",
            format!("{} unexpected bytes between sections and trailer", trailer_off - pos),
        ));
    }
    Ok(frames)
}

fn parse_meta(payload: &[u8]) -> Result<(usize, usize, f64)> {
    let mut r = SectionReader::new(payload, "meta");
    let n1 = checked_usize(r.u64()?, "spoke count n1").map_err(wrap("meta"))?;
    let n2 = checked_usize(r.u64()?, "hub count n2").map_err(wrap("meta"))?;
    let c = r.f64()?;
    r.finish()?;
    if !(c > 0.0 && c < 1.0) {
        return Err(corrupt("meta", format!("restart probability {c} outside (0, 1)")));
    }
    Ok((n1, n2, c))
}

/// Raw `u64` payload (PERM/BSIZ/DEGS): length must be a multiple of 8.
fn parse_raw_u64s(payload: &[u8], section: &'static str) -> Result<Vec<usize>> {
    if !payload.len().is_multiple_of(8) {
        return Err(corrupt(
            section,
            format!("payload length {} is not a multiple of 8", payload.len()),
        ));
    }
    let mut out = Vec::with_capacity(payload.len() / 8);
    for chunk in payload.chunks_exact(8) {
        out.push(checked_usize(le_u64(chunk), "array element").map_err(wrap(section))?);
    }
    Ok(out)
}

/// Raw matrix payload: `(nrows, ncols, indptr, indices, values)` before
/// the structural audit runs.
type MatrixParts = (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>);

/// Parses a matrix payload into its raw parts; the caller runs the
/// structural audit via `try_from_parts`.
fn parse_matrix_parts(payload: &[u8], section: &'static str) -> Result<MatrixParts> {
    let mut r = SectionReader::new(payload, section);
    let nrows = checked_usize(r.u64()?, "matrix row count").map_err(wrap(section))?;
    let ncols = checked_usize(r.u64()?, "matrix column count").map_err(wrap(section))?;
    let indptr = r.usize_array()?;
    let indices = r.usize_array()?;
    let values = r.f64_array()?;
    r.finish()?;
    Ok((nrows, ncols, indptr, indices, values))
}

fn parse_csc(payload: &[u8], section: &'static str) -> Result<CscMatrix> {
    let (nrows, ncols, indptr, indices, values) = parse_matrix_parts(payload, section)?;
    // Trust boundary: run the full invariant audit (structure and
    // finiteness), not just shape checks — a checksum-valid payload can
    // still have been *written* with NaN/∞ or broken structure.
    CscMatrix::try_from_parts(nrows, ncols, indptr, indices, values).map_err(wrap(section))
}

fn parse_csr(payload: &[u8], section: &'static str) -> Result<CsrMatrix> {
    let (nrows, ncols, indptr, indices, values) = parse_matrix_parts(payload, section)?;
    // Trust boundary: full audit, as in `parse_csc`.
    CsrMatrix::try_from_parts(nrows, ncols, indptr, indices, values).map_err(wrap(section))
}

/// Cross-validates partition dimensions and assembles the index. Shared
/// by the v1 and v2 readers so both enforce identical consistency rules.
#[allow(clippy::too_many_arguments)]
fn assemble(
    n1: usize,
    n2: usize,
    c: f64,
    perm: Permutation,
    block_sizes: Vec<usize>,
    degrees: Vec<usize>,
    l1_inv: CscMatrix,
    u1_inv: CscMatrix,
    l2_inv: CscMatrix,
    u2_inv: CscMatrix,
    h12: CsrMatrix,
    h21: CsrMatrix,
) -> Result<Bear> {
    // The sum is checked: corrupt headers near usize::MAX must fail
    // typed, not overflow (panic in debug, wrap to a bogus `n` in
    // release).
    let n = n1
        .checked_add(n2)
        .ok_or_else(|| corrupt("meta", format!("n1 {n1} + n2 {n2} overflows")))?;
    if perm.len() != n
        || degrees.len() != n
        || block_sizes.iter().sum::<usize>() != n1
        || l1_inv.nrows() != n1
        || u1_inv.nrows() != n1
        || l2_inv.nrows() != n2
        || u2_inv.nrows() != n2
        || h12.nrows() != n1
        || h12.ncols() != n2
        || h21.nrows() != n2
        || h21.ncols() != n1
    {
        return Err(corrupt("meta", "inconsistent index dimensions"));
    }
    Ok(Bear {
        l1_inv,
        u1_inv,
        l2_inv,
        u2_inv,
        h12,
        h21,
        perm,
        n1,
        n2,
        c,
        block_sizes,
        degrees,
        // Preprocessing happened in the process that wrote the index;
        // a loaded index reports zero stage timings.
        timings: crate::stats::StageTimings::default(),
        topk_bounds: std::sync::OnceLock::new(),
    })
}

fn load_v2(bytes: &[u8]) -> Result<Bear> {
    let frames = v2_frames(bytes)?;
    let [meta, perm_b, bsiz_b, degs_b, l1_b, u1_b, l2_b, u2_b, h12_b, h21_b]: [&[u8]; 10] =
        frames.try_into().map_err(|_| corrupt("header", "wrong section count"))?;
    let (n1, n2, c) = parse_meta(meta)?;
    let perm =
        Permutation::try_from_parts(parse_raw_u64s(perm_b, "perm")?).map_err(wrap("perm"))?;
    let block_sizes = parse_raw_u64s(bsiz_b, "block_sizes")?;
    let degrees = parse_raw_u64s(degs_b, "degrees")?;
    let l1_inv = parse_csc(l1_b, "l1_inv")?;
    let u1_inv = parse_csc(u1_b, "u1_inv")?;
    let l2_inv = parse_csc(l2_b, "l2_inv")?;
    let u2_inv = parse_csc(u2_b, "u2_inv")?;
    let h12 = parse_csr(h12_b, "h12")?;
    let h21 = parse_csr(h21_b, "h21")?;
    assemble(n1, n2, c, perm, block_sizes, degrees, l1_inv, u1_inv, l2_inv, u2_inv, h12, h21)
}

// ---------------------------------------------------------------------------
// v1 reader/writer (legacy format, kept for compatibility)
// ---------------------------------------------------------------------------

fn write_usize_slice<W: Write>(w: &mut W, data: &[usize]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&(v as u64).to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

fn write_f64_slice<W: Write>(w: &mut W, data: &[f64]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// A reader that knows how many payload bytes can still legally follow,
/// so length prefixes read from untrusted files are validated *before*
/// any allocation. A corrupt or truncated index therefore fails with a
/// structured error instead of attempting a huge `Vec::with_capacity`.
struct BoundedReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> BoundedReader<R> {
    fn new(inner: R, remaining: u64) -> Self {
        BoundedReader { inner, remaining }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        if buf.len() as u64 > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "truncated index: needed {} bytes, {} remain",
                buf.len(),
                self.remaining
            )));
        }
        self.inner.read_exact(buf).map_err(io_err)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    /// Validates that a length prefix of `len` elements (8 bytes each)
    /// fits in the remaining input.
    fn check_len(&self, len: u64) -> Result<()> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| Error::InvalidStructure(format!("corrupt length prefix {len}")))?;
        if bytes > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                self.remaining
            )));
        }
        Ok(())
    }
}

fn read_u64<R: Read>(r: &mut BoundedReader<R>) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<usize>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    for _ in 0..len {
        out.push(checked_usize(read_u64(r)?, "array element")?);
    }
    Ok(out)
}

fn read_f64_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<f64>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

fn read_csc<R: Read>(r: &mut BoundedReader<R>) -> Result<CscMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    // Trust boundary: run the full invariant audit, as in `parse_csc`.
    CscMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

fn read_csr<R: Read>(r: &mut BoundedReader<R>) -> Result<CsrMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    CsrMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

/// Parses a v1 image (magic already verified by the dispatcher).
fn parse_v1(bytes: &[u8]) -> Result<Bear> {
    let body = &bytes[MAGIC_V1.len()..];
    let mut r = BoundedReader::new(body, body.len() as u64);
    let n1 = checked_usize(read_u64(&mut r)?, "spoke count n1")?;
    let n2 = checked_usize(read_u64(&mut r)?, "hub count n2")?;
    let mut cbuf = [0u8; 8];
    r.read_exact(&mut cbuf)?;
    let c = f64::from_le_bytes(cbuf);
    if !(c > 0.0 && c < 1.0) {
        return Err(Error::InvalidStructure(format!("corrupt restart probability {c}")));
    }
    let perm = Permutation::try_from_parts(read_usize_slice(&mut r)?)?;
    let block_sizes = read_usize_slice(&mut r)?;
    let degrees = read_usize_slice(&mut r)?;
    let l1_inv = read_csc(&mut r)?;
    let u1_inv = read_csc(&mut r)?;
    let l2_inv = read_csc(&mut r)?;
    let u2_inv = read_csc(&mut r)?;
    let h12 = read_csr(&mut r)?;
    let h21 = read_csr(&mut r)?;
    assemble(n1, n2, c, perm, block_sizes, degrees, l1_inv, u1_inv, l2_inv, u2_inv, h12, h21)
}

fn load_v1(bytes: &[u8]) -> Result<Bear> {
    // v1 has no checksums, so every failure here is structural; wrap it
    // in the corruption taxonomy with the format version as the section.
    parse_v1(bytes).map_err(wrap("v1"))
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl Bear {
    /// Writes the precomputed index to `path` in the v2 format,
    /// crash-safely: the image is built in memory, written to a hidden
    /// temp file in the target directory, fsynced, atomically renamed
    /// over `path`, and the directory is fsynced. A crash (or error) at
    /// any point leaves the previous contents of `path` intact.
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_v2_bytes())
    }

    /// Writes the index in the legacy v1 layout (`BEARIDX1`: bare
    /// header + length-prefixed arrays, no checksums). Kept so the
    /// compatibility suite can prove current binaries still read files
    /// written by pre-v2 releases; new code should use [`Bear::save`].
    pub fn save_v1(&self, path: &Path) -> Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        push_u64(&mut out, self.n1 as u64);
        push_u64(&mut out, self.n2 as u64);
        out.extend_from_slice(&self.c.to_le_bytes());
        write_usize_slice(&mut out, self.perm.as_new_to_old())?;
        write_usize_slice(&mut out, &self.block_sizes)?;
        write_usize_slice(&mut out, &self.degrees)?;
        for m in [&self.l1_inv, &self.u1_inv, &self.l2_inv, &self.u2_inv] {
            push_u64(&mut out, m.nrows() as u64);
            push_u64(&mut out, m.ncols() as u64);
            write_usize_slice(&mut out, m.indptr())?;
            write_usize_slice(&mut out, m.indices())?;
            write_f64_slice(&mut out, m.values())?;
        }
        for m in [&self.h12, &self.h21] {
            push_u64(&mut out, m.nrows() as u64);
            push_u64(&mut out, m.ncols() as u64);
            write_usize_slice(&mut out, m.indptr())?;
            write_usize_slice(&mut out, m.indices())?;
            write_f64_slice(&mut out, m.values())?;
        }
        write_atomic(path, &out)
    }

    /// Reads a precomputed index written by [`Bear::save`] (v2) or a
    /// pre-v2 binary (v1).
    ///
    /// The file is a trust boundary. For v2 the whole-file and
    /// per-section checksums are verified before any parsing; for both
    /// versions every matrix and the node ordering are re-validated via
    /// the `try_from_parts` constructors (sorted, in-bounds,
    /// duplicate-free indices; monotone `indptr`; bijective permutation;
    /// finite values), and the partition dimensions are cross-checked.
    /// Any failure — torn write, bit rot, or a corrupt-but-length-valid
    /// payload — returns [`Error::CorruptIndex`] naming the section,
    /// never a panic and never an index that answers with garbage (see
    /// `crates/core/tests/crash_injection.rs`).
    pub fn load(path: &Path) -> Result<Self> {
        crate::fail_point!("persist::load");
        let bytes = std::fs::read(path).map_err(io_err)?;
        match bytes.get(..8) {
            Some(m) if m == MAGIC_V2 => load_v2(&bytes),
            Some(m) if m == MAGIC_V1 => load_v1(&bytes),
            Some(m) => Err(corrupt("header", format!("not a BEAR index file (magic {m:?})"))),
            None => Err(corrupt(
                "header",
                format!("file too short ({} bytes) to hold a magic number", bytes.len()),
            )),
        }
    }

    /// Like [`Bear::load`], but an artifact that fails integrity or
    /// structural validation is renamed to `<path>.corrupt` so it cannot
    /// be retried into serving; the returned error's detail records the
    /// quarantine destination. I/O errors (e.g. the file is simply
    /// missing) are *not* quarantined — only typed corruption is.
    pub fn load_or_quarantine(path: &Path) -> Result<Self> {
        match Self::load(path) {
            Err(Error::CorruptIndex { section, detail }) => {
                let mut q = path.as_os_str().to_os_string();
                q.push(".corrupt");
                let quarantined = PathBuf::from(q);
                let detail = match std::fs::rename(path, &quarantined) {
                    Ok(()) => format!("{detail}; quarantined to {}", quarantined.display()),
                    Err(e) => format!("{detail}; quarantine rename failed: {e}"),
                };
                Err(Error::CorruptIndex { section, detail })
            }
            other => other,
        }
    }
}

/// One framed section of a v2 index, as reported by [`verify_index`].
#[derive(Debug, Clone, PartialEq)]
pub struct SectionInfo {
    /// Four-character section tag (e.g. `META`, `L1IV`).
    pub tag: String,
    /// Payload length in bytes (framing overhead excluded).
    pub len: u64,
}

/// Result of a successful [`verify_index`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexReport {
    /// On-disk format version: 1 (`BEARIDX1`) or 2 (`BEARIDX2`).
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Spoke count.
    pub n1: usize,
    /// Hub count.
    pub n2: usize,
    /// Restart probability.
    pub c: f64,
    /// Section inventory (empty for v1, which has no framing).
    pub sections: Vec<SectionInfo>,
}

/// Fully verifies the index at `path` — checksums, framing, structural
/// invariants, dimension consistency — by replaying the complete load
/// path, and reports what was found. Errors are exactly those
/// [`Bear::load`] would return; the file is never modified.
pub fn verify_index(path: &Path) -> Result<IndexReport> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    let (version, bear) = match bytes.get(..8) {
        Some(m) if m == MAGIC_V2 => (2, load_v2(&bytes)?),
        Some(m) if m == MAGIC_V1 => (1, load_v1(&bytes)?),
        Some(m) => return Err(corrupt("header", format!("not a BEAR index file (magic {m:?})"))),
        None => {
            return Err(corrupt(
                "header",
                format!("file too short ({} bytes) to hold a magic number", bytes.len()),
            ))
        }
    };
    let sections = if version == 2 {
        // The load above already proved the framing valid; this walk
        // just inventories it for the report.
        v2_frames(&bytes)?
            .into_iter()
            .zip(SECTIONS.iter())
            .map(|(payload, (tag, _))| SectionInfo {
                tag: String::from_utf8_lossy(*tag).into_owned(),
                len: payload.len() as u64,
            })
            .collect()
    } else {
        Vec::new()
    };
    Ok(IndexReport {
        version,
        file_len: bytes.len() as u64,
        n1: bear.n1,
        n2: bear.n2,
        c: bear.c,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    fn sample_graph() -> Graph {
        let mut edges = Vec::new();
        for v in 1..10 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        edges.push((3, 4));
        edges.push((4, 3));
        Graph::from_edges(10, &edges).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    /// Recomputes every section CRC and the trailer over a surgically
    /// edited image (payload bytes changed, lengths unchanged), so tests
    /// can reach the structural validators *beneath* the checksums.
    fn fix_checksums(bytes: &mut [u8]) {
        let trailer_off = bytes.len() - TRAILER_LEN;
        let mut pos = MAGIC_V2.len();
        while pos < trailer_off {
            let len = le_u64(&bytes[pos + 4..pos + 12]) as usize;
            let payload_end = pos + 12 + len;
            let crc = crate::crc32::crc32(&bytes[pos + 12..payload_end]);
            bytes[payload_end..payload_end + 4].copy_from_slice(&crc.to_le_bytes());
            pos = payload_end + 4;
        }
        let file_crc = crate::crc32::crc32(&bytes[..trailer_off]);
        bytes[trailer_off + 8..trailer_off + 12].copy_from_slice(&file_crc.to_le_bytes());
    }

    #[test]
    fn save_load_round_trip_preserves_queries() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_round_trip.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.num_nodes(), bear.num_nodes());
        assert_eq!(loaded.n_hubs(), bear.n_hubs());
        for seed in 0..10 {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn v2_round_trip_is_bit_identical() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let a = tmp("bear_persist_bitident_a.idx");
        let b = tmp("bear_persist_bitident_b.idx");
        bear.save(&a).unwrap();
        Bear::load(&a).unwrap().save(&b).unwrap();
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        assert_eq!(&ba[..8], MAGIC_V2);
        assert_eq!(ba, bb, "save -> load -> save must reproduce the image byte for byte");
    }

    #[test]
    fn v1_files_still_load() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_v1_compat.idx");
        bear.save_v1(&path).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V1);
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for seed in 0..10 {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("bear_persist_garbage.idx");
        std::fs::write(&path, b"not an index at all").unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, Error::CorruptIndex { section: "header", .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn load_rejects_wrong_magic() {
        let path = tmp("bear_persist_magic.idx");
        std::fs::write(&path, b"WRONGMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, Error::CorruptIndex { section: "header", .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn load_rejects_truncated_file_without_huge_allocation() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_truncated.idx");
        bear.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncation anywhere in the file must produce a typed error.
        for keep in [0, 7, 12, full.len() / 4, full.len() / 2, full.len() - 3] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "truncated to {keep} bytes: unexpected error {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_load_rejects_corrupt_length_prefix() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_corrupt_len.idx");
        bear.save_v1(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The first v1 length prefix (the permutation's) sits right after
        // magic + n1 + n2 + c = 32 bytes. Blow it up to u64::MAX: a naive
        // `Vec::with_capacity` on it would abort the process, while the
        // bounded reader must reject it against the remaining file size.
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::CorruptIndex { section: "v1", .. }), "unexpected: {err}");
        assert!(format!("{err}").contains("length prefix"), "unexpected error: {err}");
    }

    #[test]
    fn v2_checksums_catch_a_single_flipped_bit() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_bitflip.idx");
        bear.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for byte in [9, full.len() / 3, full.len() - TRAILER_LEN + 9] {
            let mut bytes = full.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let err = Bear::load(&path).unwrap_err();
            assert!(
                matches!(err, Error::CorruptIndex { .. }),
                "bit flip at byte {byte}: unexpected error {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_rejects_structural_corruption_beneath_checksums() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_meta_corrupt.idx");
        bear.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // META payload starts after magic (8) + frame header (12); its
        // restart probability is the third u64 field. Set it to 2.0 and
        // re-fix every checksum: the CRCs now pass, so only the semantic
        // validator can catch it.
        let c_off = 8 + 12 + 16;
        bytes[c_off..c_off + 8].copy_from_slice(&2.0f64.to_le_bytes());
        fix_checksums(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::CorruptIndex { section: "meta", .. }), "unexpected: {err}");
    }

    #[test]
    fn load_or_quarantine_renames_corrupt_artifacts() {
        let path = tmp("bear_persist_quarantine.idx");
        let quarantined = tmp("bear_persist_quarantine.idx.corrupt");
        std::fs::remove_file(&quarantined).ok();
        std::fs::write(&path, b"definitely not an index").unwrap();
        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, Error::CorruptIndex { .. }), "unexpected: {err}");
        assert!(format!("{err}").contains("quarantined to"), "detail lacks destination: {err}");
        assert!(!path.exists(), "corrupt artifact left in place");
        assert!(quarantined.exists(), "quarantine file missing");
        std::fs::remove_file(&quarantined).ok();
    }

    #[test]
    fn load_or_quarantine_leaves_missing_files_alone() {
        let path = tmp("bear_persist_missing.idx");
        std::fs::remove_file(&path).ok();
        let err = Bear::load_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, Error::InvalidStructure(_)), "unexpected: {err}");
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let dir = tmp("bear_persist_tmpdir");
        std::fs::create_dir_all(&dir).unwrap();
        bear.save(&dir.join("index.idx")).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "index.idx")
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        assert!(leftovers.is_empty(), "stray files after save: {leftovers:?}");
    }

    #[test]
    fn verify_index_reports_v2_sections() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_verify.idx");
        bear.save(&path).unwrap();
        let report = verify_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.version, 2);
        assert_eq!(report.n1 + report.n2, 10);
        assert!((report.c - 0.1).abs() < 1e-12);
        assert_eq!(report.sections.len(), SECTIONS.len());
        assert_eq!(report.sections[0].tag, "META");
        assert_eq!(report.sections[0].len, 24);
    }

    #[test]
    fn verify_index_reports_v1_without_sections() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = tmp("bear_persist_verify_v1.idx");
        bear.save_v1(&path).unwrap();
        let report = verify_index(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.version, 1);
        assert!(report.sections.is_empty());
    }

    #[test]
    fn save_load_preserves_approx_variant() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::approx(0.1, 1e-3)).unwrap();
        let path = tmp("bear_persist_approx.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bear.stats(), loaded.stats());
        assert_eq!(bear.query(2).unwrap(), loaded.query(2).unwrap());
    }
}
