//! Criterion micro-benchmark of the SlashBurn reordering (the dominant
//! term of BEAR's preprocessing on spoke-heavy graphs, Table 3 line 2).

use bear_datasets::dataset_by_name;
use bear_graph::{slashburn, SlashBurnConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_slashburn(c: &mut Criterion) {
    let mut group = c.benchmark_group("slashburn");
    group.sample_size(10);
    for dataset in ["small_routing", "small_web", "small_citation"] {
        let g = dataset_by_name(dataset).unwrap().load();
        let config = SlashBurnConfig::paper_default(g.num_nodes());
        group.bench_with_input(BenchmarkId::from_parameter(dataset), &g, |b, g| {
            b.iter(|| std::hint::black_box(slashburn(g, &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slashburn);
criterion_main!(benches);
