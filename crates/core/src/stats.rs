//! Accounting for the precomputed matrices (Tables 2 and 4 of the paper),
//! plus per-stage preprocessing wall-clock timings.

use std::time::Duration;

/// Wall-clock time spent in each stage of Algorithm 1, recorded while
/// [`crate::Bear::new`] runs. All zeros for an index loaded from disk
/// (the work happened in another process).
///
/// Stage names follow the paper's line numbers: `build_h` (line 1),
/// `slashburn` (lines 2–3), `partition` (line 4), `factor_h11` /
/// `invert_h11` (line 5), `schur` (lines 6–7, including the hub
/// reordering), `factor_schur` / `invert_schur` (line 8), and `sparsify`
/// (line 9, zero for BEAR-Exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Building `H = I − (1−c) Ãᵀ`.
    pub build_h: Duration,
    /// SlashBurn ordering plus the symmetric permutation of `H`.
    pub slashburn: Duration,
    /// Partitioning `H` into `H₁₁, H₁₂, H₂₁, H₂₂`.
    pub partition: Duration,
    /// Block-diagonal LU factorization of `H₁₁`.
    pub factor_h11: Duration,
    /// Inversion of the `H₁₁` triangular factors (`L₁⁻¹`, `U₁⁻¹`).
    pub invert_h11: Duration,
    /// Schur complement `S = H₂₂ − H₂₁ U₁⁻¹ L₁⁻¹ H₁₂` and hub reorder.
    pub schur: Duration,
    /// LU factorization of `S`.
    pub factor_schur: Duration,
    /// Inversion of the `S` triangular factors (`L₂⁻¹`, `U₂⁻¹`).
    pub invert_schur: Duration,
    /// Drop-tolerance sparsification of the six output matrices.
    pub sparsify: Duration,
    /// End-to-end preprocessing time (the stages above plus stitching).
    pub total: Duration,
}

impl StageTimings {
    /// Compact single-line rendering (seconds per stage), for CLI and
    /// bench reporting.
    pub fn summary(&self) -> String {
        format!(
            "build_h={:.3}s slashburn={:.3}s partition={:.3}s factor_h11={:.3}s \
             invert_h11={:.3}s schur={:.3}s factor_schur={:.3}s invert_schur={:.3}s \
             sparsify={:.3}s total={:.3}s",
            self.build_h.as_secs_f64(),
            self.slashburn.as_secs_f64(),
            self.partition.as_secs_f64(),
            self.factor_h11.as_secs_f64(),
            self.invert_h11.as_secs_f64(),
            self.schur.as_secs_f64(),
            self.factor_schur.as_secs_f64(),
            self.invert_schur.as_secs_f64(),
            self.sparsify.as_secs_f64(),
            self.total.as_secs_f64(),
        )
    }
}

/// Nonzero counts and total bytes of BEAR's six precomputed matrices,
/// plus the structural statistics the paper reports per dataset.
///
/// Equality intentionally ignores [`PrecomputedStats::timings`]: two runs
/// of the same preprocessing are "equal" when they produced the same
/// matrices, regardless of how long each stage took (this is what the
/// serial-vs-parallel determinism tests assert).
#[derive(Debug, Clone)]
pub struct PrecomputedStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of spokes (`n₁`).
    pub n1: usize,
    /// Number of hubs (`n₂`).
    pub n2: usize,
    /// Number of diagonal blocks in `H₁₁` (`b`).
    pub num_blocks: usize,
    /// `Σᵢ n₁ᵢ²` (Table 4 column).
    pub sum_block_sq: u128,
    /// Nonzeros of `L₁⁻¹`.
    pub nnz_l1_inv: usize,
    /// Nonzeros of `U₁⁻¹`.
    pub nnz_u1_inv: usize,
    /// Nonzeros of `L₂⁻¹`.
    pub nnz_l2_inv: usize,
    /// Nonzeros of `U₂⁻¹`.
    pub nnz_u2_inv: usize,
    /// Nonzeros of `H₁₂`.
    pub nnz_h12: usize,
    /// Nonzeros of `H₂₁`.
    pub nnz_h21: usize,
    /// Total bytes of the six matrices in compressed sparse storage.
    pub bytes: usize,
    /// Per-stage preprocessing wall-clock timings (zeros for a loaded
    /// index). Excluded from equality.
    pub timings: StageTimings,
}

impl PartialEq for PrecomputedStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `timings`, which is run-dependent.
        self.n == other.n
            && self.n1 == other.n1
            && self.n2 == other.n2
            && self.num_blocks == other.num_blocks
            && self.sum_block_sq == other.sum_block_sq
            && self.nnz_l1_inv == other.nnz_l1_inv
            && self.nnz_u1_inv == other.nnz_u1_inv
            && self.nnz_l2_inv == other.nnz_l2_inv
            && self.nnz_u2_inv == other.nnz_u2_inv
            && self.nnz_h12 == other.nnz_h12
            && self.nnz_h21 == other.nnz_h21
            && self.bytes == other.bytes
    }
}

impl Eq for PrecomputedStats {}

impl PrecomputedStats {
    /// Total nonzeros across all six precomputed matrices (the paper's
    /// `#nz` in Figure 2).
    pub fn total_nnz(&self) -> usize {
        self.nnz_l1_inv
            + self.nnz_u1_inv
            + self.nnz_l2_inv
            + self.nnz_u2_inv
            + self.nnz_h12
            + self.nnz_h21
    }

    /// `|L₁⁻¹| + |U₁⁻¹|` (Table 4 column).
    pub fn nnz_spoke_factors(&self) -> usize {
        self.nnz_l1_inv + self.nnz_u1_inv
    }

    /// `|L₂⁻¹| + |U₂⁻¹|` (Table 4 column).
    pub fn nnz_hub_factors(&self) -> usize {
        self.nnz_l2_inv + self.nnz_u2_inv
    }

    /// `|H₁₂| + |H₂₁|` (Table 4 column).
    pub fn nnz_cross(&self) -> usize {
        self.nnz_h12 + self.nnz_h21
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PrecomputedStats {
        PrecomputedStats {
            n: 10,
            n1: 8,
            n2: 2,
            num_blocks: 3,
            sum_block_sq: 24,
            nnz_l1_inv: 1,
            nnz_u1_inv: 2,
            nnz_l2_inv: 3,
            nnz_u2_inv: 4,
            nnz_h12: 5,
            nnz_h21: 6,
            bytes: 100,
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn aggregates_add_up() {
        let s = sample();
        assert_eq!(s.total_nnz(), 21);
        assert_eq!(s.nnz_spoke_factors(), 3);
        assert_eq!(s.nnz_hub_factors(), 7);
        assert_eq!(s.nnz_cross(), 11);
    }

    #[test]
    fn equality_ignores_timings() {
        let a = sample();
        let mut b = sample();
        b.timings.total = Duration::from_secs(7);
        b.timings.schur = Duration::from_millis(3);
        assert_eq!(a, b);
        let mut c = sample();
        c.nnz_h21 = 999;
        assert_ne!(a, c);
    }

    #[test]
    fn timings_summary_lists_every_stage() {
        let t = StageTimings { total: Duration::from_millis(1500), ..StageTimings::default() };
        let s = t.summary();
        for stage in [
            "build_h=",
            "slashburn=",
            "partition=",
            "factor_h11=",
            "invert_h11=",
            "schur=",
            "factor_schur=",
            "invert_schur=",
            "sparsify=",
            "total=1.500s",
        ] {
            assert!(s.contains(stage), "missing {stage} in {s}");
        }
    }
}
