//! Reproduces **Figure 10** (Appendix E.1): personalized-PageRank query
//! time of the exact methods as the number of seeds grows
//! (1, 10, 100, 1000).
//!
//! ```text
//! cargo run --release -p bear-bench --bin fig10_ppr_query \
//!     [--datasets a,b] [--budget-mb N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{measure, ExperimentResult, ResultRow};
use bear_bench::methods::{build_method, exact_method_names};
use bear_bench::params::params_for;
use bear_sparse::mem::MemBudget;

/// Builds a normalized preference vector over `k` deterministic seeds.
fn multi_seed_q(n: usize, k: usize) -> Vec<f64> {
    let k = k.min(n);
    let mut q = vec![0.0; n];
    for i in 0..k {
        q[(i * 2654435761) % n] += 1.0;
    }
    let sum: f64 = q.iter().sum();
    for v in &mut q {
        *v /= sum;
    }
    q
}

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["routing_like", "email_like"]);
    let budget = MemBudget::bytes(opts.budget_bytes);
    let repeats = 5;

    let mut out =
        ExperimentResult::new("figure_10", "PPR query time of exact methods vs number of seeds");
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        for spec in exact_method_names() {
            let solver = match build_method(&spec, &g, &params, &budget) {
                Ok(s) => s,
                Err(e) => {
                    let mut row = ResultRow::new(dataset, &spec.display_name());
                    row.failed = Some(format!("{e}"));
                    out.rows.push(row);
                    continue;
                }
            };
            for k in [1usize, 10, 100, 1000] {
                let q = multi_seed_q(g.num_nodes(), k);
                let mut total = 0.0;
                for _ in 0..repeats {
                    let (_, secs) = measure(|| solver.query_distribution(&q).expect("ppr query"));
                    total += secs;
                }
                let mut row = ResultRow::new(dataset, &spec.display_name());
                row.param = Some(format!("seeds={k}"));
                row.query_s = Some(total / repeats as f64);
                out.rows.push(row);
            }
        }
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
