//! Shared experiment drivers used by the figure binaries.

use crate::harness::{mean_query_time, measure, ExperimentResult, ResultRow};
use crate::methods::{build_method, exact_method_names, MethodSpec};
use crate::params::params_for;
use bear_core::metrics::{cosine_similarity, l2_error};
use bear_core::RwrSolver;
use bear_datasets::dataset_by_name;
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;

/// Loads a dataset by name, panicking with a helpful message on typos.
pub fn load_dataset(name: &str) -> Graph {
    dataset_by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}' (see bear-datasets registry)"))
        .load()
}

/// Runs the exact-method suite (Figures 1(a), 1(b), 5): preprocess time,
/// memory, and mean query time for every exact method on every dataset.
/// Methods that blow the budget produce a `failed` row — the paper's
/// omitted bars.
pub fn exact_suite(
    experiment: &str,
    description: &str,
    datasets: &[String],
    num_seeds: usize,
    budget_bytes: usize,
) -> ExperimentResult {
    let mut out = ExperimentResult::new(experiment, description);
    let budget = MemBudget::bytes(budget_bytes);
    for dataset in datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        for spec in exact_method_names() {
            let mut row = ResultRow::new(dataset, &spec.display_name());
            let (built, pre_s) = measure(|| build_method(&spec, &g, &params, &budget));
            match built {
                Ok(solver) => {
                    row.preprocess_s = Some(pre_s);
                    row.memory_bytes = Some(solver.memory_bytes());
                    row.query_s = Some(mean_query_time(solver.as_ref(), num_seeds));
                }
                Err(e) => row.failed = Some(format!("{e}")),
            }
            out.rows.push(row);
        }
    }
    out
}

/// The drop-tolerance grid the paper sweeps: `ξ ∈ {0, n⁻², n⁻¹, n⁻¹ᐟ²,
/// n⁻¹ᐟ⁴}`, with display labels.
pub fn xi_grid(n: usize) -> Vec<(String, f64)> {
    let nf = n as f64;
    vec![
        ("xi=0".into(), 0.0),
        ("xi=n^-2".into(), nf.powf(-2.0)),
        ("xi=n^-1".into(), nf.powf(-1.0)),
        ("xi=n^-1/2".into(), nf.powf(-0.5)),
        ("xi=n^-1/4".into(), nf.powf(-0.25)),
    ]
}

/// The RPPR/BRPPR expansion-threshold grid of Figure 8.
pub fn threshold_grid() -> Vec<(String, f64)> {
    vec![
        ("eps=1e-4".into(), 1e-4),
        ("eps=1e-3".into(), 1e-3),
        ("eps=1e-2".into(), 1e-2),
        ("eps=0.1".into(), 0.1),
        ("eps=0.5".into(), 0.5),
    ]
}

/// Reference (exact) scores for accuracy measurements: BEAR-Exact queries
/// over the harness's deterministic seed spread.
pub fn reference_scores(g: &Graph, dataset: &str, num_seeds: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
    let params = params_for(dataset);
    let exact = build_method(&MethodSpec::Bear { xi: 0.0 }, g, &params, &MemBudget::unlimited())
        .expect("BEAR-Exact preprocessing");
    let n = g.num_nodes();
    let seeds: Vec<usize> = (0..num_seeds).map(|i| (i * 2654435761) % n).collect();
    let scores = seeds.iter().map(|&s| exact.query(s).expect("exact query")).collect();
    (seeds, scores)
}

/// Measures one approximate solver against reference scores: mean query
/// time, mean cosine similarity, mean L2 error.
pub fn accuracy_of(
    solver: &dyn RwrSolver,
    seeds: &[usize],
    reference: &[Vec<f64>],
) -> (f64, f64, f64) {
    let mut time = 0.0;
    let mut cos = 0.0;
    let mut l2 = 0.0;
    for (&seed, exact) in seeds.iter().zip(reference) {
        let (r, secs) = measure(|| solver.query(seed).expect("query"));
        time += secs;
        cos += cosine_similarity(&r, exact);
        l2 += l2_error(&r, exact);
    }
    let k = seeds.len() as f64;
    (time / k, cos / k, l2 / k)
}

/// Runs the approximate-method trade-off suite (Figures 8 and 13):
/// BEAR-Approx / B_LIN / NB_LIN over the drop-tolerance grid and
/// RPPR / BRPPR over the threshold grid, measuring query time, space,
/// and accuracy against BEAR-Exact.
pub fn approx_tradeoff_suite(
    experiment: &str,
    description: &str,
    datasets: &[String],
    num_seeds: usize,
    budget_bytes: usize,
) -> ExperimentResult {
    let budget = MemBudget::bytes(budget_bytes);
    let mut out = ExperimentResult::new(experiment, description);
    for dataset in datasets {
        let g = load_dataset(dataset);
        let params = params_for(dataset);
        let (seeds, reference) = reference_scores(&g, dataset, num_seeds);

        for (label, xi) in xi_grid(g.num_nodes()) {
            for spec in [MethodSpec::Bear { xi }, MethodSpec::BLin { xi }, MethodSpec::NbLin { xi }]
            {
                let mut row = ResultRow::new(dataset, &spec.display_name());
                row.param = Some(label.clone());
                let (built, pre_s) = measure(|| build_method(&spec, &g, &params, &budget));
                match built {
                    Ok(solver) => {
                        let (query_s, cos, l2) = accuracy_of(solver.as_ref(), &seeds, &reference);
                        row.preprocess_s = Some(pre_s);
                        row.query_s = Some(query_s);
                        row.memory_bytes = Some(solver.memory_bytes());
                        row.cosine = Some(cos);
                        row.l2 = Some(l2);
                    }
                    Err(e) => row.failed = Some(format!("{e}")),
                }
                out.rows.push(row);
            }
        }

        for (label, eps) in threshold_grid() {
            for spec in [
                MethodSpec::Rppr { threshold: Some(eps) },
                MethodSpec::Brppr { threshold: Some(eps) },
            ] {
                let mut row = ResultRow::new(dataset, &spec.display_name());
                row.param = Some(label.clone());
                match build_method(&spec, &g, &params, &budget) {
                    Ok(solver) => {
                        let (query_s, cos, l2) = accuracy_of(solver.as_ref(), &seeds, &reference);
                        row.query_s = Some(query_s);
                        row.memory_bytes = Some(0);
                        row.cosine = Some(cos);
                        row.l2 = Some(l2);
                    }
                    Err(e) => row.failed = Some(format!("{e}")),
                }
                out.rows.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_grid_is_monotone_increasing() {
        let grid = xi_grid(10_000);
        assert_eq!(grid.len(), 5);
        for w in grid.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(grid[0].1, 0.0);
    }

    #[test]
    fn exact_suite_runs_on_small_dataset() {
        let result =
            exact_suite("test", "smoke", &["small_routing".to_string()], 2, usize::MAX / 4);
        assert_eq!(result.rows.len(), exact_method_names().len());
        // BEAR must succeed.
        let bear = result.rows.iter().find(|r| r.method == "BEAR-Exact").unwrap();
        assert!(bear.failed.is_none());
        assert!(bear.query_s.unwrap() > 0.0);
    }

    #[test]
    fn accuracy_of_exact_solver_is_perfect() {
        let g = load_dataset("small_routing");
        let (seeds, reference) = reference_scores(&g, "small_routing", 3);
        let exact = build_method(
            &MethodSpec::Bear { xi: 0.0 },
            &g,
            &params_for("small_routing"),
            &MemBudget::unlimited(),
        )
        .unwrap();
        let (_, cos, l2) = accuracy_of(exact.as_ref(), &seeds, &reference);
        assert!((cos - 1.0).abs() < 1e-12);
        assert!(l2 < 1e-12);
    }
}
