//! Jacobi eigensolver for small symmetric matrices.
//!
//! The randomized SVD (used by the B_LIN / NB_LIN baselines) reduces the
//! problem to an eigendecomposition of a small `t × t` Gram matrix, for
//! which the cyclic Jacobi rotation method is simple, robust, and
//! backward-stable.

use crate::dense::DenseMatrix;
use crate::error::{Error, Result};

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`, with
/// eigenvalues sorted in descending order.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the order of `values`.
    pub vectors: DenseMatrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method. `a` must be symmetric; only its lower triangle is trusted.
pub fn symmetric_eigen(a: &DenseMatrix) -> Result<SymmetricEigen> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(Error::DimensionMismatch {
            op: "symmetric eigen",
            lhs: (a.nrows(), a.ncols()),
            rhs: (n, n),
        });
    }
    let mut m = a.clone();
    // Symmetrize defensively (callers pass Gram matrices that are symmetric
    // up to rounding).
    for i in 0..n {
        for j in 0..i {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }
    let mut v = DenseMatrix::identity(n);

    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frobenius(&m)) {
            return Ok(sorted_eigen(m, v));
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Compute the Jacobi rotation (c, s) zeroing (p, q).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Update rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(Error::DidNotConverge { what: "jacobi eigensolver", iterations: max_sweeps })
}

fn frobenius(m: &DenseMatrix) -> f64 {
    m.data().iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn sorted_eigen(m: DenseMatrix, v: DenseMatrix) -> SymmetricEigen {
    let n = m.nrows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_col)] = v[(i, old_col)];
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2_eigen() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn decomposition_reconstructs_matrix() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]])
            .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        // A = V diag(λ) Vᵀ
        let mut lam = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.values[i];
        }
        let back = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.5, 1.0, 0.5], &[0.0, 0.5, 1.0]])
            .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(3)) < 1e-9);
    }
}
