//! The `bear` binary: thin argv adapter over [`bear_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match bear_cli::parse_command(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", bear_cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = bear_cli::run(&cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(bear_cli::exit_code(&e));
    }
}
