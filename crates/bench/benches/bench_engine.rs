//! Criterion benchmark: batch query throughput of the persistent
//! [`QueryEngine`] pool against the legacy per-call path.
//!
//! The legacy `Bear::query_batch` spawns a fresh scoped-thread team and
//! allocates every workspace and result vector per call; the engine keeps
//! its workers and per-worker buffers alive across calls. On a hub-spoke
//! graph of ≥ 10k nodes the engine must be strictly faster — this bench
//! is the acceptance check for that claim.

use bear_core::{Bear, BearConfig, EngineConfig, QueryEngine};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

/// The pre-engine batch path, reproduced for comparison: a scoped thread
/// team is spawned per call and every query goes through the allocating
/// [`Bear::query`] (fresh workspace + temporaries each time), which is
/// what `query_batch` compiled to before the persistent pool existed.
fn legacy_query_batch(bear: &Bear, seeds: &[usize], threads: usize) -> Vec<Vec<f64>> {
    let threads = threads.max(1);
    let chunk = seeds.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|part| {
                scope
                    .spawn(move || part.iter().map(|&s| bear.query(s).unwrap()).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
}

/// Deterministic hub-spoke graph with ≥ 10k nodes (paper-style structure:
/// a dense hub core plus thousands of small caves).
fn bench_graph() -> bear_graph::Graph {
    let mut rng = StdRng::seed_from_u64(20150604);
    let g = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 30,
            num_caves: 3000,
            max_cave_size: 7,
            cave_density: 0.4,
            hub_links: 2,
            hub_density: 0.5,
        },
        &mut rng,
    );
    assert!(g.num_nodes() >= 10_000, "bench graph too small: {}", g.num_nodes());
    g
}

fn bench_engine(c: &mut Criterion) {
    let g = bench_graph();
    let bear = Arc::new(Bear::new(&g, &BearConfig::exact(0.05)).unwrap());
    let n = g.num_nodes();
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get()).min(8);

    // A fixed spread of seeds across the whole graph.
    let batch: Vec<usize> = (0..64).map(|i| (i * 2_654_435_761usize) % n).collect();

    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));

    // Legacy path: scoped threads spawned per call, full workspace and
    // temporaries allocated per query.
    group.bench_with_input(BenchmarkId::new("legacy_scoped", threads), &threads, |b, &t| {
        b.iter(|| black_box(legacy_query_batch(&bear, &batch, t)))
    });

    // Engine with the cache disabled: every iteration recomputes, so this
    // isolates the pool + preallocated-workspace win.
    let engine = QueryEngine::new(
        Arc::clone(&bear),
        EngineConfig { threads, cache_capacity: 0, ..EngineConfig::default() },
    )
    .unwrap();
    group.bench_with_input(BenchmarkId::new("engine_uncached", threads), &threads, |b, _| {
        b.iter(|| black_box(engine.query_batch(&batch).unwrap()))
    });

    // Engine with the cache on: steady-state serving, where repeats are
    // answered from the LRU without touching the pool.
    let cached = QueryEngine::new(
        Arc::clone(&bear),
        EngineConfig { threads, cache_capacity: 1024, ..EngineConfig::default() },
    )
    .unwrap();
    group.bench_with_input(BenchmarkId::new("engine_cached", threads), &threads, |b, _| {
        b.iter(|| black_box(cached.query_batch(&batch).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
