//! Property-based parity tests: on arbitrary random graphs, every exact
//! baseline agrees with the iterative reference, and the approximate
//! methods behave sanely.

use bear_baselines::{
    Brppr, BrpprConfig, Inversion, Iterative, IterativeConfig, LuDecomp, NbLin, NbLinConfig,
    QrDecomp, Rppr, RpprConfig,
};
use bear_core::rwr::RwrConfig;
use bear_core::RwrSolver;
use bear_graph::Graph;
use bear_sparse::mem::MemBudget;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |mut edges| {
            for u in 0..n {
                edges.push((u, (u + 1) % n)); // cycle backbone
            }
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

fn reference(g: &Graph, seed: usize) -> Vec<f64> {
    Iterative::new(
        g,
        &IterativeConfig { epsilon: 1e-13, max_iterations: 200_000, ..Default::default() },
    )
    .unwrap()
    .query(seed)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn inversion_matches_iterative(g in arb_graph(), s in 0.0f64..1.0) {
        let seed = ((s * g.num_nodes() as f64) as usize).min(g.num_nodes() - 1);
        let want = reference(&g, seed);
        let inv = Inversion::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let got = inv.query(seed).unwrap();
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn lu_decomp_matches_iterative(g in arb_graph(), s in 0.0f64..1.0) {
        let seed = ((s * g.num_nodes() as f64) as usize).min(g.num_nodes() - 1);
        let want = reference(&g, seed);
        let lu = LuDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let got = lu.query(seed).unwrap();
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn qr_decomp_matches_iterative(g in arb_graph(), s in 0.0f64..1.0) {
        let seed = ((s * g.num_nodes() as f64) as usize).min(g.num_nodes() - 1);
        let want = reference(&g, seed);
        let qr = QrDecomp::new(&g, &RwrConfig::default(), &MemBudget::unlimited()).unwrap();
        let got = qr.query(seed).unwrap();
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn full_rank_nblin_matches_iterative(g in arb_graph()) {
        let n = g.num_nodes();
        let want = reference(&g, 0);
        let nb = NbLin::new(&g, &NbLinConfig { rank: n, ..Default::default() }).unwrap();
        let got = nb.query(0).unwrap();
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn rppr_with_tiny_threshold_matches_iterative(g in arb_graph()) {
        let want = reference(&g, 0);
        let rppr = Rppr::new(
            &g,
            &RpprConfig { expand_threshold: 1e-14, epsilon: 1e-13, ..Default::default() },
        )
        .unwrap();
        let got = rppr.query(0).unwrap();
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn brppr_scores_bounded_at_any_threshold(g in arb_graph(), t in 0.0f64..0.5) {
        let brppr = Brppr::new(
            &g,
            &BrpprConfig { boundary_threshold: t.max(1e-9), ..Default::default() },
        )
        .unwrap();
        let r = brppr.query(0).unwrap();
        for &v in &r {
            prop_assert!(v >= 0.0);
            prop_assert!(v <= 1.0 + 1e-9);
        }
        let sum: f64 = r.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn approximate_scores_never_negative(g in arb_graph()) {
        // NB_LIN can technically produce tiny negative values from the
        // low-rank error, but at full rank they must be non-negative up
        // to rounding.
        let n = g.num_nodes();
        let nb = NbLin::new(&g, &NbLinConfig { rank: n, ..Default::default() }).unwrap();
        let r = nb.query(0).unwrap();
        for &v in &r {
            prop_assert!(v >= -1e-8, "negative score {v}");
        }
    }
}
