//! Dense Householder QR factorization.
//!
//! Used by the QR-decomposition baseline (Fujiwara et al., KDD 2012). The
//! paper itself observes (citing Boyd & Vandenberghe) that sparsity is hard
//! to exploit in QR — `Qᵀ` and `R⁻¹` come out dense on most graphs (its
//! Figure 2(b,c)) — so a dense kernel is the honest implementation; the
//! baseline simply refuses inputs whose dense `n²` footprint exceeds the
//! experiment's memory budget, reproducing the paper's out-of-memory bars.

use crate::dense::DenseMatrix;
use crate::error::{Error, Result};

/// Dense QR factorization `A = Q R` with `Q` orthogonal and `R` upper
/// triangular, computed with Householder reflections.
#[derive(Debug, Clone)]
pub struct DenseQr {
    /// Orthogonal factor (n × n).
    pub q: DenseMatrix,
    /// Upper triangular factor (n × n).
    pub r: DenseMatrix,
}

impl DenseQr {
    /// Factorizes a square matrix.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(Error::DimensionMismatch {
                op: "dense qr",
                lhs: (a.nrows(), a.ncols()),
                rhs: (n, n),
            });
        }
        let mut r = a.clone();
        let mut q = DenseMatrix::identity(n);
        let mut v = vec![0.0f64; n];
        for k in 0..n.saturating_sub(1) {
            // Householder vector for column k below the diagonal.
            let mut norm2 = 0.0;
            for i in k..n {
                let x = r[(i, k)];
                v[i] = x;
                norm2 += x * x;
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                continue;
            }
            let alpha = if v[k] >= 0.0 { -norm } else { norm };
            v[k] -= alpha;
            let vnorm2: f64 = (k..n).map(|i| v[i] * v[i]).sum();
            if vnorm2 == 0.0 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / (vᵀ v) to R (left) as a rank-1
            // update, iterating rows so every inner loop is a contiguous
            // slice: w = vᵀ R, then R -= (2/vᵀv) v wᵀ.
            let coef = 2.0 / vnorm2;
            let mut w = vec![0.0f64; n - k];
            for (i, &vi) in v.iter().enumerate().skip(k) {
                if vi == 0.0 {
                    continue;
                }
                for (wc, &rc) in w.iter_mut().zip(&r.row(i)[k..]) {
                    *wc += vi * rc;
                }
            }
            for (i, &vi) in v.iter().enumerate().skip(k) {
                let s = coef * vi;
                if s == 0.0 {
                    continue;
                }
                for (rc, &wc) in r.row_mut(i)[k..].iter_mut().zip(&w) {
                    *rc -= s * wc;
                }
            }
            // Q update: each row of Q is contiguous, so the dot and the
            // update are both slice traversals.
            for c in 0..n {
                let row = q.row_mut(c);
                let dot: f64 = row[k..].iter().zip(&v[k..]).map(|(a, b)| a * b).sum();
                let scale = coef * dot;
                for (qv, &vi) in row[k..].iter_mut().zip(&v[k..]) {
                    *qv -= scale * vi;
                }
            }
            // Zero the annihilated entries exactly to avoid drift.
            r[(k, k)] = alpha;
            for i in k + 1..n {
                r[(i, k)] = 0.0;
            }
        }
        Ok(DenseQr { q, r })
    }

    /// Solves `A x = b` via `R x = Qᵀ b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.q.nrows();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "qr solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // y = Qᵀ b
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &bj) in b.iter().enumerate() {
                acc += self.q[(j, i)] * bj;
            }
            *yi = acc;
        }
        // Back substitution with R.
        for i in (0..n).rev() {
            let d = self.r[(i, i)];
            if d.abs() < 1e-12 {
                return Err(Error::SingularMatrix { at: i });
            }
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= self.r[(i, j)] * yj;
            }
            y[i] = acc / d;
        }
        Ok(y)
    }

    /// Materializes `R⁻¹` (dense upper-triangular inverse) by back
    /// substitution against each identity column, keeping every inner
    /// loop a contiguous row-slice dot product.
    pub fn r_inverse(&self) -> Result<DenseMatrix> {
        let n = self.r.nrows();
        for j in 0..n {
            if self.r[(j, j)].abs() < 1e-12 {
                return Err(Error::SingularMatrix { at: j });
            }
        }
        let mut inv = DenseMatrix::zeros(n, n);
        let mut x = vec![0.0f64; n];
        for j in 0..n {
            // Solve R x = e_j; x has support 0..=j.
            x[j] = 1.0;
            for i in (0..=j).rev() {
                let row = &self.r.row(i)[i + 1..=j];
                let acc: f64 = row.iter().zip(&x[i + 1..=j]).map(|(a, b)| a * b).sum();
                x[i] = (x[i] - acc) / self.r[(i, i)];
            }
            for i in 0..=j {
                inv[(i, j)] = x[i];
                x[i] = 0.0;
            }
        }
        Ok(inv)
    }
}

/// Orthonormalizes the columns of `a` in place with modified Gram–Schmidt,
/// returning the number of numerically independent columns kept. Used by
/// the randomized SVD's range finder.
pub fn mgs_orthonormalize(a: &mut DenseMatrix) -> usize {
    let (n, k) = (a.nrows(), a.ncols());
    let mut kept = 0;
    for j in 0..k {
        // Orthogonalize column j against previously kept columns.
        for p in 0..kept {
            let mut dot = 0.0;
            for i in 0..n {
                dot += a[(i, p)] * a[(i, j)];
            }
            for i in 0..n {
                let delta = dot * a[(i, p)];
                a[(i, j)] -= delta;
            }
        }
        let norm: f64 = (0..n).map(|i| a[(i, j)] * a[(i, j)]).sum::<f64>().sqrt();
        if norm > 1e-10 {
            for i in 0..n {
                a[(i, j)] /= norm;
            }
            if kept != j {
                for i in 0..n {
                    let v = a[(i, j)];
                    a[(i, kept)] = v;
                    a[(i, j)] = 0.0;
                }
            }
            kept += 1;
        } else {
            for i in 0..n {
                a[(i, j)] = 0.0;
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[1.0, 3.0, -2.0], &[0.0, 1.0, 4.0]]).unwrap()
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = test_matrix();
        let qr = DenseQr::factor(&a).unwrap();
        let back = qr.q.matmul(&qr.r).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn q_is_orthogonal() {
        let a = test_matrix();
        let qr = DenseQr::factor(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = test_matrix();
        let qr = DenseQr::factor(&a).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_solve_matches_lu() {
        let a = test_matrix();
        let qr = DenseQr::factor(&a).unwrap();
        let lu = crate::lu::DenseLu::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let xq = qr.solve(&b).unwrap();
        let xl = lu.solve(&b).unwrap();
        for (p, q) in xq.iter().zip(&xl) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn r_inverse_is_inverse() {
        let a = test_matrix();
        let qr = DenseQr::factor(&a).unwrap();
        let rinv = qr.r_inverse().unwrap();
        let prod = qr.r.matmul(&rinv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }

    #[test]
    fn mgs_produces_orthonormal_columns() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let kept = mgs_orthonormalize(&mut a);
        assert_eq!(kept, 2);
        let gram = a.transpose().matmul(&a).unwrap();
        assert!(gram.max_abs_diff(&DenseMatrix::identity(2)) < 1e-10);
    }

    #[test]
    fn mgs_drops_dependent_columns() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap();
        let kept = mgs_orthonormalize(&mut a);
        assert_eq!(kept, 1);
    }
}
