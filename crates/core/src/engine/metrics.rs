//! Lock-free serving metrics.
//!
//! All counters are atomics imported through the `crate::sync` shim, so
//! recording never blocks the query path and the counter protocol is
//! model-checked by the loom suite (`metrics_are_consistent` in
//! `crates/core/tests/loom_engine.rs`).

use crate::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Nanoseconds of `elapsed` as a `u64`, saturating at `u64::MAX`.
///
/// `elapsed.as_nanos() as u64` *wraps* above ~584 years of nanoseconds,
/// so a pathological clock step (NTP jump, suspended VM, `Duration::MAX`
/// from a saturating subtraction) would land in an arbitrary low bucket
/// and poison the percentile estimates; saturating pins it to the
/// open-ended top bucket instead.
fn saturating_nanos(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Number of log₂ latency buckets (covers 1ns .. ~584 years).
pub(crate) const LATENCY_BUCKETS: usize = 64;

/// Number of log₂ block-width buckets: bucket `i` counts blocked solves
/// of width in `[2^i, 2^(i+1))`, with the last bucket open-ended
/// (width ≥ 128).
pub const BLOCK_WIDTH_BUCKETS: usize = 8;

/// Lock-free serving metrics: query count, cache hit/miss counts, fault
/// counters, and per-class (hit vs. miss) fixed-bucket log₂ latency
/// histograms for percentile estimates. All counters are atomics, so
/// recording never blocks the query path.
pub struct Metrics {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Worker panics converted to typed errors (the pool survived).
    worker_panics: AtomicU64,
    /// Queries that exhausted their deadline budget.
    timeouts: AtomicU64,
    /// Jobs rejected at admission because the queue was full.
    queue_rejections: AtomicU64,
    /// Jobs shed at dequeue because their deadline had already passed.
    shed_jobs: AtomicU64,
    /// Queries answered by the degraded (iterative fallback) path.
    degraded: AtomicU64,
    /// `hit_histogram[i]` counts cache-hit queries with latency in
    /// `[2^i, 2^(i+1))` ns; `miss_histogram` likewise for computed ones.
    hit_histogram: [AtomicU64; LATENCY_BUCKETS],
    miss_histogram: [AtomicU64; LATENCY_BUCKETS],
    /// Blocked solves executed by the pool (a width-1 solve counts too).
    block_solves: AtomicU64,
    /// Queries answered through blocked solves (sum of block widths).
    block_queries: AtomicU64,
    /// Log₂ histogram of blocked-solve widths.
    block_width_histogram: [AtomicU64; BLOCK_WIDTH_BUCKETS],
    /// Per-query *amortized* compute latency (solve wall time divided by
    /// block width), weighted by width so each query contributes once.
    amortized_histogram: [AtomicU64; LATENCY_BUCKETS],
    /// Top-k queries answered through the pruned path (certified or not).
    topk_pruned_queries: AtomicU64,
    /// Pruned top-k queries whose answer was certified by the bound pass.
    topk_certified: AtomicU64,
    /// Pruned top-k queries that fell back to the full solve.
    topk_fallbacks: AtomicU64,
    /// Candidates surviving pruning, summed over pruned top-k queries.
    topk_candidates: AtomicU64,
    /// Nodes never scored thanks to pruning, summed over pruned queries.
    topk_nodes_pruned: AtomicU64,
}

impl Metrics {
    /// All counters zeroed.
    pub fn new() -> Self {
        Metrics {
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            shed_jobs: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            hit_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            miss_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            block_solves: AtomicU64::new(0),
            block_queries: AtomicU64::new(0),
            block_width_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            amortized_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            topk_pruned_queries: AtomicU64::new(0),
            topk_certified: AtomicU64::new(0),
            topk_fallbacks: AtomicU64::new(0),
            topk_candidates: AtomicU64::new(0),
            topk_nodes_pruned: AtomicU64::new(0),
        }
    }

    /// Accounts one answered query.
    pub fn record(&self, cache_hit: bool, elapsed: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let histogram = if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            &self.hit_histogram
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            &self.miss_histogram
        };
        let nanos = saturating_nanos(elapsed).max(1);
        let bucket = (63 - nanos.leading_zeros()) as usize;
        histogram[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one blocked solve of `width` coalesced queries that took
    /// `elapsed` wall time: bumps the block-size histogram and credits
    /// each of the `width` queries an amortized latency of
    /// `elapsed / width` in the amortized histogram.
    pub fn record_block(&self, width: usize, elapsed: Duration) {
        if width == 0 {
            return;
        }
        self.block_solves.fetch_add(1, Ordering::Relaxed);
        self.block_queries.fetch_add(width as u64, Ordering::Relaxed);
        let wbucket =
            ((usize::BITS - 1 - width.leading_zeros()) as usize).min(BLOCK_WIDTH_BUCKETS - 1);
        self.block_width_histogram[wbucket].fetch_add(1, Ordering::Relaxed);
        let per_query =
            u64::try_from(elapsed.as_nanos() / width as u128).unwrap_or(u64::MAX).max(1);
        let bucket = (63 - per_query.leading_zeros()) as usize;
        self.amortized_histogram[bucket].fetch_add(width as u64, Ordering::Relaxed);
    }

    /// Accounts a worker panic (converted into a typed error).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a query that ran out of deadline budget.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts an admission-control rejection (queue full).
    pub fn record_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a job shed at dequeue (deadline already passed, or its
    /// caller cancelled it).
    pub fn record_shed(&self) {
        self.shed_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts a query answered by the degraded fallback path.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one pruned top-k query: whether the bound pass certified
    /// the answer (vs. falling back to the full solve), how many
    /// candidates survived pruning, and how many nodes were never scored.
    pub fn record_topk_pruned(&self, certified: bool, candidates: u64, nodes_pruned: u64) {
        self.topk_pruned_queries.fetch_add(1, Ordering::Relaxed);
        if certified {
            self.topk_certified.fetch_add(1, Ordering::Relaxed);
        } else {
            self.topk_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.topk_candidates.fetch_add(candidates, Ordering::Relaxed);
        self.topk_nodes_pruned.fetch_add(nodes_pruned, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hit: Vec<u64> = self.hit_histogram.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let miss: Vec<u64> =
            self.miss_histogram.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let combined: Vec<u64> = hit.iter().zip(&miss).map(|(a, b)| a + b).collect();
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            shed_jobs: self.shed_jobs.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            p50: percentile_from(&combined, 0.50),
            p95: percentile_from(&combined, 0.95),
            p99: percentile_from(&combined, 0.99),
            p50_hit: percentile_from(&hit, 0.50),
            p50_miss: percentile_from(&miss, 0.50),
            block_solves: self.block_solves.load(Ordering::Relaxed),
            block_queries: self.block_queries.load(Ordering::Relaxed),
            block_width_histogram: std::array::from_fn(|i| {
                self.block_width_histogram[i].load(Ordering::Relaxed)
            }),
            p50_amortized: {
                let amortized: Vec<u64> =
                    self.amortized_histogram.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                percentile_from(&amortized, 0.50)
            },
            topk_pruned_queries: self.topk_pruned_queries.load(Ordering::Relaxed),
            topk_certified: self.topk_certified.load(Ordering::Relaxed),
            topk_fallbacks: self.topk_fallbacks.load(Ordering::Relaxed),
            topk_candidates: self.topk_candidates.load(Ordering::Relaxed),
            topk_nodes_pruned: self.topk_nodes_pruned.load(Ordering::Relaxed),
            pager_hits: 0,
            pager_misses: 0,
            pager_evictions: 0,
            pager_resident_bytes: 0,
            pager_resident_blocks: 0,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Percentile estimate from a log₂ histogram: the upper bound of the
/// bucket containing the percentile rank (an overestimate by at most 2×,
/// the bucket resolution).
pub(crate) fn percentile_from(histogram: &[u64], p: f64) -> Duration {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * p).ceil() as u64).clamp(1, total);
    let mut seen = 0;
    for (i, &count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            return Duration::from_nanos(upper);
        }
    }
    Duration::from_nanos(u64::MAX)
}

/// Frozen view of [`Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Total queries answered (cache hits included).
    pub queries: u64,
    /// Queries answered from a cache.
    pub cache_hits: u64,
    /// Queries that required computation.
    pub cache_misses: u64,
    /// Worker panics converted to typed errors (the pool survived).
    pub worker_panics: u64,
    /// Queries that exhausted their deadline budget.
    pub timeouts: u64,
    /// Jobs rejected at admission because the queue was full.
    pub queue_rejections: u64,
    /// Jobs shed at dequeue (expired deadline or cancelled caller).
    pub shed_jobs: u64,
    /// Queries answered by the degraded fallback path.
    pub degraded: u64,
    /// Median latency over all queries (upper bound of the bucket).
    pub p50: Duration,
    /// 95th-percentile latency over all queries.
    pub p95: Duration,
    /// 99th-percentile latency over all queries.
    pub p99: Duration,
    /// Median latency of cache hits only.
    pub p50_hit: Duration,
    /// Median latency of computed (cache-miss) queries only.
    pub p50_miss: Duration,
    /// Blocked solves executed by the pool (width-1 fallbacks included).
    pub block_solves: u64,
    /// Queries answered through blocked solves (sum of block widths).
    pub block_queries: u64,
    /// Log₂ histogram of blocked-solve widths: entry `i` counts solves of
    /// width in `[2^i, 2^(i+1))`, last entry open-ended.
    pub block_width_histogram: [u64; BLOCK_WIDTH_BUCKETS],
    /// Median per-query *amortized* compute latency (solve wall time
    /// divided by block width, each query weighted once).
    pub p50_amortized: Duration,
    /// Top-k queries answered through the pruned path (certified or not).
    pub topk_pruned_queries: u64,
    /// Pruned top-k queries certified by the bound pass.
    pub topk_certified: u64,
    /// Pruned top-k queries that fell back to the full solve.
    pub topk_fallbacks: u64,
    /// Candidates surviving pruning, summed over pruned top-k queries.
    pub topk_candidates: u64,
    /// Nodes never scored thanks to pruning, summed over pruned queries.
    pub topk_nodes_pruned: u64,
    /// Spoke-segment cache hits (paged v3 index only; zero otherwise).
    /// These five are merged in from the block pager at snapshot time —
    /// [`Metrics`] itself stays pager-unaware.
    pub pager_hits: u64,
    /// Spoke segments read and decoded from disk.
    pub pager_misses: u64,
    /// Spoke segments evicted to stay within the residency budget.
    pub pager_evictions: u64,
    /// Bytes of spoke factors currently resident in the pager cache.
    pub pager_resident_bytes: u64,
    /// Spoke blocks currently resident in the pager cache.
    pub pager_resident_blocks: u64,
}

impl MetricsSnapshot {
    /// Fraction of queries served from cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean number of queries answered per blocked solve (1.0 when no
    /// coalescing happened, 0.0 before any solve ran).
    pub fn avg_block_width(&self) -> f64 {
        if self.block_solves == 0 {
            0.0
        } else {
            self.block_queries as f64 / self.block_solves as f64
        }
    }

    /// Fraction of candidate nodes the pruned top-k path never scored,
    /// over all pruned queries: `nodes_pruned / (candidates + pruned)`.
    /// `0.0` before any pruned query ran.
    pub fn topk_prune_ratio(&self) -> f64 {
        let total = self.topk_candidates + self.topk_nodes_pruned;
        if total == 0 {
            0.0
        } else {
            self.topk_nodes_pruned as f64 / total as f64
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn percentile_math_on_known_histogram() {
        let mut histogram = vec![0u64; LATENCY_BUCKETS];
        histogram[4] = 50; // 16..31 ns
        histogram[10] = 50; // 1024..2047 ns
        assert_eq!(percentile_from(&histogram, 0.50), Duration::from_nanos(31));
        assert_eq!(percentile_from(&histogram, 0.95), Duration::from_nanos(2047));
        assert_eq!(percentile_from(&histogram, 0.0), Duration::from_nanos(31));
        assert_eq!(percentile_from(&[0; LATENCY_BUCKETS], 0.5), Duration::ZERO);
    }

    #[test]
    fn record_fills_expected_bucket() {
        let m = Metrics::new();
        m.record(false, Duration::from_nanos(20)); // bucket 4: 16..31
        m.record(true, Duration::from_nanos(1500)); // bucket 10: 1024..2047
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.p50, Duration::from_nanos(31));
        assert_eq!(s.p99, Duration::from_nanos(2047));
    }

    #[test]
    fn per_class_percentiles_are_attributed() {
        let m = Metrics::new();
        // Hits are fast, misses are slow; the combined histogram must
        // not bleed one class into the other's percentile.
        for _ in 0..10 {
            m.record(true, Duration::from_nanos(20));
            m.record(false, Duration::from_micros(100));
        }
        let s = m.snapshot();
        assert_eq!(s.p50_hit, Duration::from_nanos(31));
        assert!(s.p50_miss >= Duration::from_micros(64));
        assert!(s.p50_hit < s.p50_miss);
    }

    #[test]
    fn block_histogram_and_amortized_latency() {
        let m = Metrics::new();
        m.record_block(1, Duration::from_nanos(20)); // bucket 0
        m.record_block(4, Duration::from_nanos(80)); // bucket 2, 20ns/query
        m.record_block(7, Duration::from_nanos(140)); // bucket 2
        m.record_block(1000, Duration::from_micros(20)); // clamped to last bucket
        m.record_block(0, Duration::ZERO); // ignored
        let s = m.snapshot();
        assert_eq!(s.block_solves, 4);
        assert_eq!(s.block_queries, 1 + 4 + 7 + 1000);
        assert_eq!(s.block_width_histogram[0], 1);
        assert_eq!(s.block_width_histogram[2], 2);
        assert_eq!(s.block_width_histogram[BLOCK_WIDTH_BUCKETS - 1], 1);
        assert!((s.avg_block_width() - 1012.0 / 4.0).abs() < 1e-12);
        // All 1012 queries were credited 20 ns each: bucket 4 → 31 ns cap.
        assert_eq!(s.p50_amortized, Duration::from_nanos(31));
    }

    /// Satellite regression: a pathological clock step (here the worst
    /// case, `Duration::MAX`) must saturate into the open-ended top
    /// bucket. With the old `as u64` cast it *wrapped* into an arbitrary
    /// low bucket and dragged the percentile estimates down.
    #[test]
    fn pathological_clock_step_saturates_into_top_bucket() {
        let m = Metrics::new();
        m.record(false, Duration::MAX);
        m.record_block(3, Duration::MAX);
        let s = m.snapshot();
        assert_eq!(s.p50, Duration::from_nanos(u64::MAX));
        assert_eq!(s.p99, Duration::from_nanos(u64::MAX));
        assert_eq!(s.p50_amortized, Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn fault_counters_record() {
        let m = Metrics::new();
        m.record_worker_panic();
        m.record_timeout();
        m.record_timeout();
        m.record_queue_rejection();
        m.record_shed();
        m.record_degraded();
        let s = m.snapshot();
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.queue_rejections, 1);
        assert_eq!(s.shed_jobs, 1);
        assert_eq!(s.degraded, 1);
    }
}
