//! Per-dataset method parameters — the reproduction's equivalent of the
//! paper's Table 5, scaled to the stand-in dataset sizes.

use bear_core::rwr::RwrConfig;

/// Default memory budget for precomputed data. The paper's machine had
/// 16 GB for graphs up to 3.8M nodes; our stand-ins are 50–500× smaller,
/// so 640 MB puts the out-of-memory cliffs in the same relative place:
/// dense inversion/QR fit only on the smallest dataset (as in the paper,
/// where Inversion scales only to Routing), the LU baseline fits on the
/// spoke-heavy datasets, and BEAR fits everywhere.
pub const DEFAULT_BUDGET_BYTES: usize = 640 * 1024 * 1024;

/// Tuned method parameters for one dataset (Table 5 analogue).
#[derive(Debug, Clone, Copy)]
pub struct DatasetParams {
    /// Restart probability (the paper fixes 0.05 everywhere).
    pub rwr: RwrConfig,
    /// B_LIN number of partitions (`#p`).
    pub blin_partitions: usize,
    /// B_LIN rank (`t`).
    pub blin_rank: usize,
    /// NB_LIN rank (`t`).
    pub nblin_rank: usize,
    /// RPPR expansion threshold (`ε_b`).
    pub rppr_threshold: f64,
    /// BRPPR boundary threshold (`ε_b`).
    pub brppr_threshold: f64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            rwr: RwrConfig::default(),
            blin_partitions: 20,
            blin_rank: 50,
            nblin_rank: 50,
            rppr_threshold: 1e-4,
            brppr_threshold: 1e-4,
        }
    }
}

/// Parameters per dataset name. Ranks and partition counts are scaled
/// from Table 5 by roughly the dataset size ratio.
pub fn params_for(dataset: &str) -> DatasetParams {
    let d = DatasetParams::default();
    match dataset {
        "routing_like" => DatasetParams { blin_partitions: 20, blin_rank: 50, nblin_rank: 30, ..d },
        "coauthor_like" => {
            DatasetParams { blin_partitions: 20, blin_rank: 60, nblin_rank: 80, ..d }
        }
        "trust_like" => DatasetParams {
            blin_partitions: 10,
            blin_rank: 50,
            nblin_rank: 80,
            brppr_threshold: 1e-5,
            ..d
        },
        "email_like" => DatasetParams {
            blin_partitions: 40,
            blin_rank: 30,
            nblin_rank: 40,
            rppr_threshold: 1e-3,
            brppr_threshold: 1e-5,
            ..d
        },
        "web_stan_like" => DatasetParams {
            blin_partitions: 40,
            blin_rank: 30,
            nblin_rank: 30,
            rppr_threshold: 1e-3,
            ..d
        },
        "web_notre_like" => DatasetParams {
            blin_partitions: 25,
            blin_rank: 30,
            nblin_rank: 40,
            brppr_threshold: 1e-5,
            ..d
        },
        "web_bs_like" => DatasetParams {
            blin_partitions: 50,
            blin_rank: 30,
            nblin_rank: 30,
            rppr_threshold: 1e-3,
            brppr_threshold: 1e-5,
            ..d
        },
        "talk_like" => DatasetParams {
            blin_partitions: 40,
            blin_rank: 40,
            nblin_rank: 40,
            rppr_threshold: 1e-3,
            brppr_threshold: 1e-6,
            ..d
        },
        "citation_like" => DatasetParams {
            blin_partitions: 20,
            blin_rank: 30,
            nblin_rank: 30,
            brppr_threshold: 1e-5,
            ..d
        },
        _ => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_datasets_have_specific_params() {
        assert_eq!(params_for("email_like").blin_partitions, 40);
        assert_eq!(params_for("trust_like").brppr_threshold, 1e-5);
    }

    #[test]
    fn unknown_dataset_gets_defaults() {
        let p = params_for("mystery");
        assert_eq!(p.blin_partitions, DatasetParams::default().blin_partitions);
    }
}
