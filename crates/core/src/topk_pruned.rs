//! Exact pruned top-k queries (DESIGN.md §17).
//!
//! [`Bear::query_top_k`] materializes the full n-vector and selects.
//! For the production top-k shape that wastes almost all of the second
//! block-elimination sweep: with a one-hot seed the *hub* side of
//! Algorithm 2 is cheap (the first spoke sweep touches only the seed's
//! diagonal block, everything else is `n₂`-sized), while the expensive
//! part — `r₁ = U₁⁻¹ L₁⁻¹ (c·q₁ − H₁₂ r₂)` over all `n₁` spokes — is
//! block-separable because `L₁⁻¹`/`U₁⁻¹` are block diagonal.
//!
//! The pruned path exploits that separability in the style of K-dash's
//! exact top-k search (Fujiwara et al., PAPERS.md): compute the hub
//! scores `r₂` exactly (bit-identical kernel sequence to the full
//! solve), bound every unresolved spoke block from above with
//! precomputed factor norms, then resolve blocks *exactly* in
//! descending bound order until the k-th best exact score strictly
//! exceeds the best remaining upper bound. Resolved scores come out of
//! the very same kernels in the very same accumulation order as the
//! full solve, so the returned ranking is **bit-identical in rank and
//! exact in score** to [`Bear::query_top_k`] — pruning only ever skips
//! work, it never approximates it.
//!
//! # Bound derivation
//!
//! For a spoke block `B` (rows/cols `[bs, be)` of the permuted spoke
//! space), the second sweep computes `r₁[B] = U₁⁻¹ L₁⁻¹ t₁[B]` with
//! `t₁ = c·q₁ − H₁₂ r₂`. The pruned path computes `t₁` exactly for
//! *every* spoke up front — `H₁₂` holds only original graph edges, so
//! this is the cheap part of the spoke sweep, and CSR rows are
//! independent dot products, so each `t₁[i]` is bit-identical to the
//! full kernel's. What pruning skips is the expensive part: the
//! `U₁⁻¹ L₁⁻¹` scatter, whose inverted triangular blocks carry the
//! fill-in. Two precomputed coefficient tables bound it:
//!
//! * the block operator norm `W_B = max_{i∈B} Σ_l |U₁⁻¹_{il}|·lrow_l`
//!   with `lrow_l = Σ_j |L₁⁻¹_{lj}|`, giving
//!   `|r₁[i]| ≤ W_B·‖t₁[B]‖_∞`, and
//! * the per-column weights `g_l = Σ_j |L₁⁻¹_{jl}|·u_j` with
//!   `u_j = max_i |U₁⁻¹_{ij}|`: since
//!   `|(U₁⁻¹L₁⁻¹)_{il}| ≤ Σ_j |U₁⁻¹_{ij}|·|L₁⁻¹_{jl}| ≤ g_l` for every
//!   row `i`, triangle inequality gives
//!   `|r₁[i]| ≤ Σ_{l∈B} g_l·|t₁[l]|`.
//!
//! ```text
//! max_{i∈B} |r₁[i]| ≤ min( W_B·‖t₁[B]‖_∞ ,  Σ_{l∈B} g_l·|t₁[l]| )
//! ```
//!
//! The norm bound wins when `U₁⁻¹`'s mass is spread across rows; the
//! weighted bound wins when `t₁` is concentrated — which is the
//! common case, since `t₁[i]` is the hub mass flowing into spoke `i`.
//! Both tables cost one pass over the nonzeros of `L₁⁻¹`/`U₁⁻¹` and
//! are cached on the [`Bear`]; `t₁` is fresh per query, so the bound
//! tracks the actual score mass entering each block. The final bound
//! is inflated by a relative `1 + 1e-9` before comparison so that
//! floating-point rounding in the coefficient sums and the scatter
//! can never under-estimate a block and silently break
//! rank-exactness.
//!
//! # Certification and fallback
//!
//! The candidate heap starts with all hub scores (already exact).
//! Blocks are resolved in descending upper-bound order; once the heap
//! holds `k` candidates and the k-th best *exact* score strictly
//! exceeds the next block's upper bound, every unresolved spoke is
//! provably outside the top k and the answer is certified. (Strict
//! comparison matters: a tie is resolved exactly rather than pruned,
//! preserving the node-id tie-break of the full path.)
//!
//! When certification cannot be reached cheaply, the query falls back
//! — still exact, just without (full) savings — with a typed
//! [`TopKFallbackReason`]:
//!
//! * [`DegenerateK`](TopKFallbackReason::DegenerateK) — every non-seed
//!   node was requested (`k ≥ n − 1`); selection cannot prune
//!   anything, so the full solve runs.
//! * [`NonFiniteBounds`](TopKFallbackReason::NonFiniteBounds) — a
//!   factor norm, hub score, or derived bound is NaN/∞, so no sound
//!   certificate exists; the full solve runs.
//! * [`BoundsTooLoose`](TopKFallbackReason::BoundsTooLoose) — resolving
//!   the next block would push resolved spokes past
//!   [`TopKPruneOptions::max_resolve_fraction`] of `n₁`. The hub sweep
//!   and `t₁` are already exact at that point, so instead of
//!   re-solving from scratch the query *completes the sweep in place*,
//!   resolving every remaining block — in arbitrary order, skipping
//!   the per-block ordering cost, which is sound because the bounded
//!   candidate heap keeps exactly the k best under a strict total
//!   order. Worst case ≈ one full solve, never two.

use std::collections::BinaryHeap;

use crate::engine::QueryWorkspace;
use crate::paging::{Factor, SpokeFactors};
use crate::precompute::Bear;
use crate::topk::{score_desc, top_k_excluding_seed, ScoredNode};
use bear_sparse::{Error, Result};

/// Tuning knobs for the pruned top-k path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKPruneOptions {
    /// Stop trusting the bounds once the blocks resolved exactly would
    /// exceed this fraction of the `n₁` spokes: the query is marked
    /// uncertified with [`TopKFallbackReason::BoundsTooLoose`] and the
    /// remaining blocks are resolved in place (still exact — that IS
    /// the full solve's spoke sweep). Must be finite and in `[0, 1]`;
    /// `0.0` trips the fallback before any block resolves (useful to
    /// force the fallback path under test).
    pub max_resolve_fraction: f64,
}

impl Default for TopKPruneOptions {
    fn default() -> Self {
        // Past ~90% resolved the certificate is clearly not going to
        // pay for the bookkeeping; stop checking and just finish.
        TopKPruneOptions { max_resolve_fraction: 0.9 }
    }
}

/// Why a pruned top-k query fell back to the full solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKFallbackReason {
    /// `k ≥ n − 1`: every non-seed node is requested, nothing can be
    /// pruned, and the full solve is strictly cheaper.
    DegenerateK,
    /// A precomputed factor norm, hub score, or derived block bound is
    /// NaN or infinite — no sound certificate exists.
    NonFiniteBounds,
    /// Certification would have required resolving more than
    /// [`TopKPruneOptions::max_resolve_fraction`] of the spokes; the
    /// sweep was completed in place (exact, uncertified) rather than
    /// re-solved from scratch.
    BoundsTooLoose,
}

impl TopKFallbackReason {
    /// Stable snake_case label (used in metrics and logs).
    pub fn as_str(&self) -> &'static str {
        match self {
            TopKFallbackReason::DegenerateK => "degenerate_k",
            TopKFallbackReason::NonFiniteBounds => "non_finite_bounds",
            TopKFallbackReason::BoundsTooLoose => "bounds_too_loose",
        }
    }
}

impl std::fmt::Display for TopKFallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a pruned top-k query actually did: how much of the index it
/// touched and whether the answer was certified by pruning or produced
/// by the full-solve fallback. Either way the answer itself is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKPruneStats {
    /// Number of diagonal blocks of `H₁₁` (resolution granularity).
    pub spoke_blocks: usize,
    /// Spoke blocks resolved exactly before certification.
    pub blocks_resolved: usize,
    /// Non-seed nodes whose exact score was computed and considered
    /// (all hubs plus every spoke in a resolved block).
    pub candidates: usize,
    /// Non-seed nodes provably outside the top k whose exact score was
    /// never computed. `candidates + nodes_pruned = n − 1`.
    pub nodes_pruned: usize,
    /// `true` when the pruning certificate closed the query; `false`
    /// when the answer came from the full-solve fallback.
    pub certified: bool,
    /// Why the fallback ran, when it did.
    pub fallback: Option<TopKFallbackReason>,
}

impl TopKPruneStats {
    /// Fraction of non-seed nodes that were never scored,
    /// `nodes_pruned / (candidates + nodes_pruned)`; `0.0` on fallback
    /// and for the empty query.
    pub fn prune_ratio(&self) -> f64 {
        let total = self.candidates + self.nodes_pruned;
        if total == 0 {
            return 0.0;
        }
        self.nodes_pruned as f64 / total as f64
    }

    fn fallback(bear: &Bear, n: usize, reason: TopKFallbackReason) -> Self {
        TopKPruneStats {
            spoke_blocks: bear.block_sizes.len(),
            blocks_resolved: bear.block_sizes.len(),
            candidates: n.saturating_sub(1),
            nodes_pruned: 0,
            certified: false,
            fallback: Some(reason),
        }
    }
}

/// Per-index coefficient tables for the block upper bounds. Computed
/// lazily on first pruned query and cached on the [`Bear`] (never
/// persisted — a loaded index rebuilds them in one pass).
#[derive(Debug, Clone)]
pub(crate) struct TopKBounds {
    /// Prefix sums of `block_sizes` (`len = blocks + 1`); block `b`
    /// owns permuted spoke positions `starts[b]..starts[b + 1]`.
    starts: Vec<usize>,
    /// `W_B = max_{i∈B} Σ_l |U₁⁻¹_{il}|·Σ_j |L₁⁻¹_{lj}|` — the operator
    /// ∞-norm bound of block `B`'s `U₁⁻¹L₁⁻¹` factor.
    w_max: Vec<f64>,
    /// `g_l = Σ_j |L₁⁻¹_{jl}|·max_i |U₁⁻¹_{ij}|` — per-column weight
    /// such that `|(U₁⁻¹L₁⁻¹)_{il}| ≤ g_l` for every row `i`; dotted
    /// against `|t₁|` it yields the entry-weighted block bound.
    g: Vec<f64>,
    /// All coefficients finite; when false every pruned query falls
    /// back with [`TopKFallbackReason::NonFiniteBounds`].
    finite: bool,
}

impl TopKBounds {
    fn for_bear(bear: &Bear) -> Result<TopKBounds> {
        let n1 = bear.n1;
        let nb = bear.block_sizes.len();
        let mut starts = Vec::with_capacity(nb + 1);
        let mut acc = 0usize;
        starts.push(0);
        for &s in &bear.block_sizes {
            acc = acc.saturating_add(s);
            starts.push(acc);
        }

        let mut lrow = vec![0.0f64; n1];
        let mut w = vec![0.0f64; n1];
        let mut u_colmax = vec![0.0f64; n1];
        let mut g = vec![0.0f64; n1];
        match &bear.spokes {
            SpokeFactors::Resident { l1_inv, u1_inv } => {
                // lrow_l = Σ_j |L₁⁻¹_{lj}|: row absolute sums,
                // accumulated by walking the CSC columns.
                for c in 0..n1 {
                    let (rows, vals) = l1_inv.col(c);
                    for (&r, &v) in rows.iter().zip(vals) {
                        if let Some(slot) = lrow.get_mut(r) {
                            *slot += v.abs();
                        }
                    }
                }
                // w_i = Σ_l |U₁⁻¹_{il}|·lrow_l and u_j = max_i |U₁⁻¹_{ij}|,
                // both from one column walk over U₁⁻¹.
                for c in 0..n1 {
                    let scale = lrow.get(c).copied().unwrap_or(0.0);
                    let (rows, vals) = u1_inv.col(c);
                    let mut cm = 0.0f64;
                    for (&r, &v) in rows.iter().zip(vals) {
                        let a = v.abs();
                        if a > cm {
                            cm = a;
                        }
                        if let Some(slot) = w.get_mut(r) {
                            *slot += a * scale;
                        }
                    }
                    if let Some(slot) = u_colmax.get_mut(c) {
                        *slot = cm;
                    }
                }
                // g_l = Σ_j |L₁⁻¹_{jl}|·u_j: column walk over L₁⁻¹.
                for c in 0..n1 {
                    let (rows, vals) = l1_inv.col(c);
                    let mut acc = 0.0f64;
                    for (&r, &v) in rows.iter().zip(vals) {
                        acc += v.abs() * u_colmax.get(r).copied().unwrap_or(0.0);
                    }
                    if let Some(slot) = g.get_mut(c) {
                        *slot = acc;
                    }
                }
            }
            SpokeFactors::Paged { pager } => {
                // Same three walks, one block at a time. `L₁⁻¹`/`U₁⁻¹`
                // are block diagonal, so every table entry depends only
                // on entries of its own block: ascending per-block
                // column walks visit the same nonzeros in the same
                // order as the global walks above, and each block is
                // fetched exactly once.
                for (b, win) in starts.windows(2).enumerate() {
                    let (bs, be) = match win {
                        [bs, be] => (*bs, (*be).min(n1)),
                        _ => continue,
                    };
                    let pair = pager.fetch(b)?;
                    for c in 0..be.saturating_sub(bs) {
                        let (rows, vals) = pair.l1.col(c);
                        for (&r, &v) in rows.iter().zip(vals) {
                            if let Some(slot) = lrow.get_mut(bs + r) {
                                *slot += v.abs();
                            }
                        }
                    }
                    for c in 0..be.saturating_sub(bs) {
                        let scale = lrow.get(bs + c).copied().unwrap_or(0.0);
                        let (rows, vals) = pair.u1.col(c);
                        let mut cm = 0.0f64;
                        for (&r, &v) in rows.iter().zip(vals) {
                            let a = v.abs();
                            if a > cm {
                                cm = a;
                            }
                            if let Some(slot) = w.get_mut(bs + r) {
                                *slot += a * scale;
                            }
                        }
                        if let Some(slot) = u_colmax.get_mut(bs + c) {
                            *slot = cm;
                        }
                    }
                    for c in 0..be.saturating_sub(bs) {
                        let (rows, vals) = pair.l1.col(c);
                        let mut acc = 0.0f64;
                        for (&r, &v) in rows.iter().zip(vals) {
                            acc += v.abs() * u_colmax.get(bs + r).copied().unwrap_or(0.0);
                        }
                        if let Some(slot) = g.get_mut(bs + c) {
                            *slot = acc;
                        }
                    }
                }
            }
        }

        let mut w_max = vec![0.0f64; nb];
        let mut finite = g.iter().all(|v| v.is_finite());
        for (b, win) in starts.windows(2).enumerate() {
            let (bs, be) = match win {
                [bs, be] => (*bs, (*be).min(n1)),
                _ => continue,
            };
            let mut wb = 0.0f64;
            for i in bs..be {
                let wi = w.get(i).copied().unwrap_or(0.0);
                if wi > wb {
                    wb = wi;
                }
            }
            if !wb.is_finite() {
                finite = false;
            }
            if let Some(slot) = w_max.get_mut(b) {
                *slot = wb;
            }
        }
        Ok(TopKBounds { starts, w_max, g, finite })
    }

    /// Block owning permuted spoke position `pos`, `None` for hubs.
    fn block_of(&self, pos: usize) -> Option<usize> {
        let spokes = self.starts.last().copied()?;
        if pos >= spokes {
            return None;
        }
        self.starts.partition_point(|&s| s <= pos).checked_sub(1)
    }

    /// `[bs, be)` range of block `b` in the permuted spoke space.
    fn block_range(&self, b: usize) -> Result<(usize, usize)> {
        match (self.starts.get(b).copied(), self.starts.get(b + 1).copied()) {
            (Some(bs), Some(be)) if bs <= be => Ok((bs, be)),
            _ => Err(Error::InvalidStructure("top-k bound block table corrupt".into())),
        }
    }
}

/// Max-heap item whose `Ord` is [`score_desc`]: `Greater` means *ranks
/// worse*, so [`BinaryHeap::peek`] is the current k-th best candidate
/// and [`BinaryHeap::into_sorted_vec`] yields best-first order —
/// exactly the order `select_top_k` produces on the full vector.
struct HeapItem(ScoredNode);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        score_desc(&self.0, &other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        score_desc(&self.0, &other.0)
    }
}

/// Keeps the best `k` candidates: push unconditionally below capacity,
/// otherwise replace the current k-th best iff `cand` ranks strictly
/// better (score_desc is a strict total order — distinct nodes never
/// compare Equal — so the kept set is exactly the k best).
fn push_bounded(heap: &mut BinaryHeap<HeapItem>, k: usize, cand: ScoredNode) {
    if heap.len() < k {
        heap.push(HeapItem(cand));
        return;
    }
    if let Some(worst) = heap.peek() {
        if score_desc(&cand, &worst.0) == std::cmp::Ordering::Less {
            heap.push(HeapItem(cand));
            heap.pop();
        }
    }
}

/// One block's upper bound in the resolution queue. `Ord` is by bound
/// descending (then block id ascending, for determinism), so a
/// max-heap pops the loosest block first. Heapifying is `O(blocks)`
/// and certified queries pop only a handful of blocks — much cheaper
/// than sorting the whole table per query.
struct BlockBound {
    ub: f64,
    b: usize,
}

impl PartialEq for BlockBound {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for BlockBound {}

impl PartialOrd for BlockBound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BlockBound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ub.total_cmp(&other.ub).then(other.b.cmp(&self.b))
    }
}

/// Outcome of the pruning attempt, before any fallback work.
enum CoreOutcome {
    Pruned { nodes: Vec<ScoredNode>, stats: TopKPruneStats },
    Fallback(TopKFallbackReason),
}

impl Bear {
    /// The cached bound tables, computing them on first use. Fallible
    /// because a paged index fetches every spoke block once to build
    /// them (a losing race computes the tables twice; the first init
    /// wins and both results are bit-identical).
    pub(crate) fn topk_bounds(&self) -> Result<&TopKBounds> {
        if let Some(b) = self.topk_bounds.get() {
            return Ok(b);
        }
        let computed = TopKBounds::for_bear(self)?;
        Ok(self.topk_bounds.get_or_init(|| computed))
    }

    /// The `k` most relevant nodes w.r.t. `seed` via bound-and-prune —
    /// bit-identical in rank and exact in score to
    /// [`Bear::query_top_k`], usually without computing most spoke
    /// scores. See the module docs for the certificate.
    pub fn query_top_k_pruned(&self, seed: usize, k: usize) -> Result<Vec<ScoredNode>> {
        let (nodes, _) = self.query_top_k_pruned_with(seed, k, &TopKPruneOptions::default())?;
        Ok(nodes)
    }

    /// [`Bear::query_top_k_pruned`] with explicit options, also
    /// returning what the pruning pass did.
    pub fn query_top_k_pruned_with(
        &self,
        seed: usize,
        k: usize,
        opts: &TopKPruneOptions,
    ) -> Result<(Vec<ScoredNode>, TopKPruneStats)> {
        let mut ws = QueryWorkspace::for_bear(self);
        self.query_top_k_pruned_in(seed, k, opts, &mut ws)
    }

    /// [`Bear::query_top_k_pruned_with`] against a caller-owned
    /// workspace: the serving-engine form. The steady state allocates
    /// only the candidate structures (`O(blocks + k)`), never an
    /// n-vector — except on the degenerate-k / non-finite fallbacks,
    /// which run the full solve.
    pub fn query_top_k_pruned_in(
        &self,
        seed: usize,
        k: usize,
        opts: &TopKPruneOptions,
        ws: &mut QueryWorkspace,
    ) -> Result<(Vec<ScoredNode>, TopKPruneStats)> {
        let n = self.num_nodes();
        if seed >= n {
            return Err(Error::IndexOutOfBounds { index: seed, bound: n });
        }
        if !opts.max_resolve_fraction.is_finite()
            || !(0.0..=1.0).contains(&opts.max_resolve_fraction)
        {
            return Err(Error::InvalidConfig {
                param: "max_resolve_fraction",
                reason: format!("must be finite in [0, 1], got {}", opts.max_resolve_fraction),
            });
        }
        let effective_k = k.min(n.saturating_sub(1));
        if effective_k == 0 {
            return Ok((
                Vec::new(),
                TopKPruneStats {
                    spoke_blocks: self.block_sizes.len(),
                    blocks_resolved: 0,
                    candidates: 0,
                    nodes_pruned: n.saturating_sub(1),
                    certified: true,
                    fallback: None,
                },
            ));
        }
        let reason = if effective_k == n - 1 {
            TopKFallbackReason::DegenerateK
        } else {
            match self.prune_core(seed, effective_k, opts, ws)? {
                CoreOutcome::Pruned { nodes, stats } => return Ok((nodes, stats)),
                CoreOutcome::Fallback(reason) => reason,
            }
        };
        // Fallback: full Algorithm 2 plus selection — exact, uncertified.
        let mut out = vec![0.0; n];
        self.query_into(seed, ws, &mut out)?;
        let nodes = top_k_excluding_seed(&out, seed, effective_k);
        Ok((nodes, TopKPruneStats::fallback(self, n, reason)))
    }

    /// The pruning pass proper. Returns `Fallback` without touching the
    /// workspace's one-hot invariant (`ws.q` is restored before any
    /// early return).
    fn prune_core(
        &self,
        seed: usize,
        effective_k: usize,
        opts: &TopKPruneOptions,
        ws: &mut QueryWorkspace,
    ) -> Result<CoreOutcome> {
        let bounds = self.topk_bounds()?;
        if !bounds.finite {
            return Ok(CoreOutcome::Fallback(TopKFallbackReason::NonFiniteBounds));
        }

        // One-hot seed, permuted — the same dance as `query_into`, with
        // `ws.q` restored to all-zero immediately.
        let mut q = std::mem::take(&mut ws.q);
        if let Some(slot) = q.get_mut(seed) {
            *slot = 1.0;
        }
        let permuted = self.perm.permute_vec_into(&q, &mut ws.q_perm);
        if let Some(slot) = q.get_mut(seed) {
            *slot = 0.0;
        }
        ws.q = q;
        permuted?;
        let (q1, q2) = ws.q_perm.split_at(self.n1);

        // Hub sweep — the exact kernel sequence of
        // `query_distribution_into`, so `r₂` is bit-identical to the
        // full solve's hub scores.
        self.spokes.matvec_into(Factor::L1, q1, &mut ws.t1)?;
        self.spokes.matvec_into(Factor::U1, &ws.t1, &mut ws.t2)?;
        self.h21.matvec_into(&ws.t2, &mut ws.t3)?;
        for (t, &qv) in ws.t3.iter_mut().zip(q2) {
            *t = qv - *t;
        }
        self.l2_inv.matvec_into(&ws.t3, &mut ws.t4)?;
        self.u2_inv.matvec_into(&ws.t4, &mut ws.t3)?;
        let (r1, r2) = ws.r.split_at_mut(self.n1);
        for (r, &v) in r2.iter_mut().zip(&ws.t3) {
            *r = self.c * v;
        }

        // Spoke right-hand side `t₁ = c·q₁ − H₁₂ r₂`, computed exactly
        // for every spoke up front. CSR rows are independent dot
        // products, so each entry matches the full kernel bit for bit;
        // `H₁₂` holds only original graph edges, so this is the cheap
        // part of the spoke sweep. The fill-heavy `U₁⁻¹L₁⁻¹` scatter is
        // what pruning skips per unresolved block.
        for ((i, t), &qv) in ws.t1.iter_mut().enumerate().zip(q1) {
            let (cols, vals) = self.h12.row(i);
            let mut acc = 0.0f64;
            for (&ci, &v) in cols.iter().zip(vals) {
                acc += v * r2.get(ci).copied().unwrap_or(0.0);
            }
            *t = self.c * qv - acc;
        }

        let seed_pos = self.perm.new_of(seed);
        let seed_block = bounds.block_of(seed_pos);

        // Upper-bound every block by
        // `min(W_B·‖t₁[B]‖_∞, Σ_{l∈B} g_l·|t₁[l]|)`; the heap below
        // yields them in descending order (ties by block id) lazily.
        let mut order: Vec<BlockBound> = Vec::with_capacity(self.block_sizes.len());
        for (b, &wm) in bounds.w_max.iter().enumerate() {
            let (bs, be) = bounds.block_range(b)?;
            let tb = ws.t1.get(bs..be).ok_or_else(|| {
                Error::InvalidStructure("top-k block range out of bounds".into())
            })?;
            let gb = bounds.g.get(bs..be).ok_or_else(|| {
                Error::InvalidStructure("top-k block range out of bounds".into())
            })?;
            let mut t_max = 0.0f64;
            let mut dot = 0.0f64;
            let mut bad = false;
            for (&v, &gl) in tb.iter().zip(gb) {
                let a = v.abs();
                if !a.is_finite() {
                    bad = true;
                }
                if a > t_max {
                    t_max = a;
                }
                dot += gl * a;
            }
            // Inflate: the coefficients are rounded f64 sums, and an
            // under-estimated bound would break rank-exactness.
            let ub = (wm * t_max).min(dot) * (1.0 + 1e-9);
            if bad || !ub.is_finite() {
                return Ok(CoreOutcome::Fallback(TopKFallbackReason::NonFiniteBounds));
            }
            order.push(BlockBound { ub, b });
        }
        // O(blocks) heapify; certified queries pop only a few blocks.
        let mut order = BinaryHeap::from(order);

        // Seed the candidate heap with the (exact) hub scores.
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(effective_k + 1);
        for (off, &score) in r2.iter().enumerate() {
            let node = self.perm.old_of(self.n1 + off);
            if node == seed {
                continue;
            }
            push_bounded(&mut heap, effective_k, ScoredNode { node, score });
        }
        let mut candidates = self.n2 - usize::from(seed_pos >= self.n1);

        // Resolve blocks until the k-th exact score certifies the rest.
        let allowed = (opts.max_resolve_fraction * self.n1 as f64).floor() as usize;
        let mut fallback = None;
        let mut resolved_nodes = 0usize;
        let mut blocks_resolved = 0usize;
        while let Some(BlockBound { ub, b }) = order.pop() {
            if heap.len() == effective_k {
                if let Some(kth) = heap.peek() {
                    // Strict: a tie gets resolved, never pruned.
                    if kth.0.score > ub {
                        break;
                    }
                }
            }
            let (bs, be) = bounds.block_range(b)?;
            let width = be - bs;
            if resolved_nodes + width > allowed {
                // Budget exhausted: the bounds are not going to pay.
                // The hub sweep and t₁ are already exact, so completing
                // the remaining block scatters in place IS the full
                // solve's spoke sweep — re-solving from scratch would
                // double the cost. Drain below, skipping the per-pop
                // ordering cost (the bounded candidate heap keeps
                // exactly the k best under a strict total order, so
                // block resolution order cannot change the answer).
                fallback = Some(TopKFallbackReason::BoundsTooLoose);
                self.resolve_into_heap(b, bs, be, &ws.t1, &mut ws.t2, r1, seed, effective_k, &mut heap)?;
                resolved_nodes += width;
                blocks_resolved += 1;
                candidates += width - usize::from(seed_block == Some(b));
                break;
            }
            self.resolve_into_heap(b, bs, be, &ws.t1, &mut ws.t2, r1, seed, effective_k, &mut heap)?;
            resolved_nodes += width;
            blocks_resolved += 1;
            candidates += width - usize::from(seed_block == Some(b));
        }
        if fallback.is_some() {
            for BlockBound { b, .. } in order.into_vec() {
                let (bs, be) = bounds.block_range(b)?;
                self.resolve_into_heap(b, bs, be, &ws.t1, &mut ws.t2, r1, seed, effective_k, &mut heap)?;
                resolved_nodes += be - bs;
                blocks_resolved += 1;
                candidates += (be - bs) - usize::from(seed_block == Some(b));
            }
        }
        let _ = resolved_nodes;

        let n = self.num_nodes();
        debug_assert!(fallback.is_none() || candidates == n.saturating_sub(1));
        let mut nodes = Vec::with_capacity(heap.len());
        for item in heap.into_sorted_vec() {
            nodes.push(item.0);
        }
        let stats = TopKPruneStats {
            spoke_blocks: self.block_sizes.len(),
            blocks_resolved,
            candidates,
            nodes_pruned: n.saturating_sub(1).saturating_sub(candidates),
            certified: fallback.is_none(),
            fallback,
        };
        Ok(CoreOutcome::Pruned { nodes, stats })
    }

    /// Exactly resolves spoke block `[bs, be)` — `r₁[B] = U₁⁻¹L₁⁻¹
    /// t₁[B]`, replicating the full kernels' per-row accumulation
    /// order — and feeds the scores into the bounded candidate heap.
    #[allow(clippy::too_many_arguments)]
    fn resolve_into_heap(
        &self,
        b: usize,
        bs: usize,
        be: usize,
        t1: &[f64],
        t2: &mut [f64],
        r1: &mut [f64],
        seed: usize,
        effective_k: usize,
        heap: &mut BinaryHeap<HeapItem>,
    ) -> Result<()> {
        self.spokes.scatter_block(Factor::L1, b, bs, be, t1, t2)?;
        self.spokes.scatter_block(Factor::U1, b, bs, be, t2, r1)?;
        let r1b = r1
            .get(bs..be)
            .ok_or_else(|| Error::InvalidStructure("top-k block range out of bounds".into()))?;
        for (off, &score) in r1b.iter().enumerate() {
            let node = self.perm.old_of(bs + off);
            if node == seed {
                continue;
            }
            push_bounded(heap, effective_k, ScoredNode { node, score });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut all = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            all.push((u, v));
            all.push((v, u));
        }
        Graph::from_edges(n, &all).unwrap()
    }

    /// Two hubs bridging three spoke chains — several nontrivial blocks.
    fn caves(n_extra: usize) -> Graph {
        let mut edges = vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (3, 4),
            (4, 5),
            (0, 6),
            (6, 7),
            (7, 8),
            (8, 6),
            (1, 9),
            (9, 10),
        ];
        let base = 11;
        for i in 0..n_extra {
            edges.push((0, base + i));
        }
        undirected(base + n_extra, &edges)
    }

    fn assert_same(a: &[ScoredNode], b: &[ScoredNode]) {
        assert_eq!(a.len(), b.len(), "lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.node, y.node, "rank order differs: {a:?} vs {b:?}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "score not exact at node {}", x.node);
        }
    }

    #[test]
    fn pruned_matches_full_exactly() {
        for xi in [0.0, 1e-4] {
            let g = caves(8);
            let cfg = if xi == 0.0 { BearConfig::exact(0.15) } else { BearConfig::approx(0.15, xi) };
            let bear = Bear::new(&g, &cfg).unwrap();
            let n = bear.num_nodes();
            for seed in 0..n {
                for k in [1, 2, 3, 7, n - 2, n - 1, n + 2] {
                    let full = bear.query_top_k(seed, k).unwrap();
                    let pruned = bear.query_top_k_pruned(seed, k).unwrap();
                    assert_same(&pruned, &full);
                }
            }
        }
    }

    #[test]
    fn degenerate_k_falls_back_typed() {
        let g = caves(2);
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let n = bear.num_nodes();
        let (nodes, stats) =
            bear.query_top_k_pruned_with(0, n - 1, &TopKPruneOptions::default()).unwrap();
        assert_eq!(nodes.len(), n - 1);
        assert!(!stats.certified);
        assert_eq!(stats.fallback, Some(TopKFallbackReason::DegenerateK));
        assert_eq!(stats.prune_ratio(), 0.0);
    }

    #[test]
    fn zero_resolve_budget_forces_loose_bounds_fallback() {
        let g = caves(6);
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        // k larger than the hub count: the heap cannot fill (let alone
        // certify) without resolving at least one spoke block, which a
        // zero budget forbids.
        let k = bear.n_hubs() + 2;
        assert!(k < bear.num_nodes() - 1, "test graph too small");
        let opts = TopKPruneOptions { max_resolve_fraction: 0.0 };
        let (nodes, stats) = bear.query_top_k_pruned_with(1, k, &opts).unwrap();
        assert_eq!(stats.fallback, Some(TopKFallbackReason::BoundsTooLoose));
        assert!(!stats.certified);
        // Fallback answers are still exact.
        assert_same(&nodes, &bear.query_top_k(1, k).unwrap());
    }

    #[test]
    fn stats_account_for_every_node() {
        let g = caves(10);
        let bear = Bear::new(&g, &BearConfig::exact(0.15)).unwrap();
        let n = bear.num_nodes();
        let (nodes, stats) =
            bear.query_top_k_pruned_with(3, 2, &TopKPruneOptions::default()).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(stats.candidates + stats.nodes_pruned, n - 1);
        assert!(stats.blocks_resolved <= stats.spoke_blocks);
        assert!((0.0..=1.0).contains(&stats.prune_ratio()));
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = caves(2);
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        assert!(bear.query_top_k_pruned(999, 3).is_err());
        for bad in [-0.1, 1.5, f64::NAN] {
            let opts = TopKPruneOptions { max_resolve_fraction: bad };
            assert!(bear.query_top_k_pruned_with(0, 3, &opts).is_err(), "accepted {bad}");
        }
        // k = 0 is a valid no-op.
        let (nodes, stats) =
            bear.query_top_k_pruned_with(0, 0, &TopKPruneOptions::default()).unwrap();
        assert!(nodes.is_empty());
        assert!(stats.certified);
    }
}
