//! Top-k convenience queries.
//!
//! The paper contrasts BEAR with top-k-only systems (K-dash, FLoS): BEAR
//! computes the scores of *all* nodes, so top-k extraction is a cheap
//! post-processing step rather than a restriction of the method. These
//! helpers package that step.

use crate::precompute::Bear;
use bear_sparse::Result;

/// A node with its relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredNode {
    /// Node id.
    pub node: usize,
    /// RWR score.
    pub score: f64,
}

/// Descending by score, ties broken by ascending node id. Uses
/// [`f64::total_cmp`] so NaN scores order deterministically (at the ends
/// of the IEEE total order) instead of depending on pivot order, which
/// the old `partial_cmp().unwrap_or(Equal)` comparator did.
pub(crate) fn score_desc(a: &ScoredNode, b: &ScoredNode) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.node.cmp(&b.node))
}

/// Extracts the `k` best-scoring nodes (descending; ties by node id) from
/// a full score vector using a partial selection — O(n + k log k), not a
/// full sort.
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<ScoredNode> {
    let items =
        scores.iter().enumerate().map(|(node, &score)| ScoredNode { node, score }).collect();
    select_top_k(items, k)
}

/// Like [`top_k_of`] but with `seed` removed from the candidates before
/// selection, so asking for `k >= n` returns all `n − 1` non-seed nodes
/// (not `k − 1` as the old sentinel-score approach silently did).
pub fn top_k_excluding_seed(scores: &[f64], seed: usize, k: usize) -> Vec<ScoredNode> {
    let items = scores
        .iter()
        .enumerate()
        .filter(|&(node, _)| node != seed)
        .map(|(node, &score)| ScoredNode { node, score })
        .collect();
    select_top_k(items, k)
}

fn select_top_k(mut items: Vec<ScoredNode>, k: usize) -> Vec<ScoredNode> {
    let k = k.min(items.len());
    if k == 0 {
        return Vec::new();
    }
    items.select_nth_unstable_by(k - 1, score_desc);
    items.truncate(k);
    items.sort_by(score_desc);
    items
}

impl Bear {
    /// The `k` most relevant nodes w.r.t. `seed`, excluding the seed
    /// itself, in descending score order. Returns `min(k, n − 1)` nodes.
    pub fn query_top_k(&self, seed: usize, k: usize) -> Result<Vec<ScoredNode>> {
        let scores = self.query(seed)?;
        Ok(top_k_excluding_seed(&scores, seed, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    #[test]
    fn top_k_of_selects_and_orders() {
        let scores = vec![0.1, 0.5, 0.3, 0.5, 0.0];
        let top = top_k_of(&scores, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, 1); // tie with 3 broken by id
        assert_eq!(top[1].node, 3);
        assert_eq!(top[2].node, 2);
    }

    #[test]
    fn top_k_handles_degenerate_k() {
        let scores = vec![1.0, 2.0];
        assert!(top_k_of(&scores, 0).is_empty());
        assert_eq!(top_k_of(&scores, 10).len(), 2);
    }

    #[test]
    fn top_k_orders_nan_deterministically() {
        let scores = vec![0.3, f64::NAN, 0.7, f64::NAN, 0.1];
        // total_cmp puts positive NaN above +inf, so NaNs lead — but
        // always in the same order, with ties broken by node id.
        let a = top_k_of(&scores, 4);
        let b = top_k_of(&scores, 4);
        // Compare by id and bit pattern (NaN != NaN under PartialEq).
        let key = |v: &[ScoredNode]| -> Vec<(usize, u64)> {
            v.iter().map(|s| (s.node, s.score.to_bits())).collect()
        };
        assert_eq!(key(&a), key(&b));
        let ids: Vec<usize> = a.iter().map(|s| s.node).collect();
        assert_eq!(ids, vec![1, 3, 2, 0]);
    }

    #[test]
    fn query_top_k_returns_full_count_when_k_exceeds_n() {
        // Undirected path on 4 nodes.
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        // The old NEG_INFINITY-sentinel path returned k−1 = 3 results for
        // k = n and silently dropped a node for every k >= n.
        for k in [4, 5, 100] {
            let top = bear.query_top_k(1, k).unwrap();
            assert_eq!(top.len(), 3, "k = {k} must return all non-seed nodes");
            assert!(top.iter().all(|s| s.node != 1));
            assert!(top.iter().all(|s| s.score.is_finite()));
        }
        assert_eq!(bear.query_top_k(1, 2).unwrap().len(), 2);
    }

    #[test]
    fn query_top_k_matches_full_sort() {
        let mut edges = Vec::new();
        for v in 1..8 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        edges.push((1, 2));
        edges.push((2, 1));
        let g = Graph::from_edges(8, &edges).unwrap();
        let bear = Bear::new(&g, &BearConfig::exact(0.2)).unwrap();
        let seed = 1;
        let top = bear.query_top_k(seed, 3).unwrap();
        // Oracle: full sort of the query result.
        let scores = bear.query(seed).unwrap();
        let mut oracle: Vec<usize> = (0..8).filter(|&u| u != seed).collect();
        oracle.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        let got: Vec<usize> = top.iter().map(|s| s.node).collect();
        assert_eq!(got, oracle[..3].to_vec());
        assert!(!got.contains(&seed));
    }
}
