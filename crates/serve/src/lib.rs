//! HTTP serving front-end for the BEAR query engine.
//!
//! `bear-serve` turns [`bear_core::QueryEngine`] into a network
//! service without adding a single external dependency: a hand-rolled
//! HTTP/1.1 layer over `std::net::TcpListener`, a connection pool
//! built on the engine's own [`bear_core::engine::queue::JobQueue`],
//! and a multi-tenant [`Registry`] whose atomically swappable handles
//! give zero-downtime index hot-swap.
//!
//! # Endpoints
//!
//! | Method | Path          | Parameters                      | Answer |
//! |--------|---------------|---------------------------------|--------|
//! | GET    | `/v1/query`   | `graph`, `seed`                 | full RWR score vector (JSON) |
//! | GET    | `/v1/topk`    | `graph`, `seed`, `k` (≥ 1, default 10) | top-k nodes excluding the seed; `k=0` is rejected with `400 bad_request` |
//! | GET    | `/v1/batch`   | `graph`, `seeds=0,3,7`          | one score vector per seed |
//! | POST   | `/admin/load` | `graph`, `index` (server path)  | publishes the next index version |
//! | GET    | `/healthz`    | —                               | liveness (200 while the process runs) |
//! | GET    | `/readyz`     | —                               | readiness (503 while warming or draining) |
//! | GET    | `/metrics`    | —                               | text exposition of all counters |
//!
//! The `graph` parameter may be omitted when exactly one graph is
//! registered. A per-request deadline arrives as `X-Deadline-Ms` and
//! maps onto the engine's deadline machinery; an expired budget fails
//! fast at admission. Fault classes map onto dedicated status codes
//! (`504` deadline, `429` overload, `503` shutdown — the HTTP mirror
//! of the CLI's exit codes), and degraded answers carry `X-Degraded`,
//! `X-Residual`, `X-Error-Bound`, and `X-Iterations` headers — on
//! `/v1/topk` just as on the full-vector endpoints.
//!
//! `/v1/topk` goes through [`bear_core::QueryEngine::query_top_k`]:
//! the exact pruned solver (`bear_core::topk_pruned`) plus a
//! prefix-aware cache (a request for `k' ≤` a cached `k` is served by
//! truncating the cached ranking — sound because the ranking order is
//! a strict total order). Answers are bit-identical to ranking the
//! full score vector.
//!
//! Score payloads use Rust's shortest round-trip `f64` formatting, so
//! parsing the JSON numbers back recovers bit-identical values — the
//! save→load→serve differential tests pin this.

pub mod http;
pub mod registry;
pub mod server;

pub use http::{client, ClientResponse, Request, Response};
pub use registry::{Registry, Tenant};
pub use server::{Server, ServerConfig, ServerHandle, ServerMetrics};
