//! Persistence of BEAR's precomputed index.
//!
//! Preprocessing is the expensive phase; a production deployment computes
//! it once and serves queries from many processes. This module writes the
//! six precomputed matrices, the node ordering, and the partition metadata
//! in a compact little-endian binary format (magic + version header, then
//! length-prefixed `u64`/`f64` arrays — no external serialization crate).

use crate::precompute::Bear;
use bear_sparse::{CscMatrix, CsrMatrix, Error, Permutation, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"BEARIDX1";

fn io_err(e: std::io::Error) -> Error {
    Error::InvalidStructure(format!("index io error: {e}"))
}

/// Converts an on-disk `u64` (length, dimension, or index) to `usize`,
/// returning the typed corruption error when it does not fit. On 32-bit
/// targets a plain `as usize` would silently truncate an oversized value
/// into a *valid-looking* small one, turning a corrupt file into wrong
/// answers instead of a load failure.
fn checked_usize(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| {
        Error::InvalidStructure(format!("corrupt index: {what} {v} does not fit in usize"))
    })
}

fn write_usize_slice<W: Write>(w: &mut W, data: &[usize]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&(v as u64).to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

fn write_f64_slice<W: Write>(w: &mut W, data: &[f64]) -> Result<()> {
    w.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// A reader that knows how many payload bytes can still legally follow,
/// so length prefixes read from untrusted files are validated *before*
/// any allocation. A corrupt or truncated index therefore fails with a
/// structured error instead of attempting a huge `Vec::with_capacity`.
struct BoundedReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> BoundedReader<R> {
    fn new(inner: R, remaining: u64) -> Self {
        BoundedReader { inner, remaining }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        if buf.len() as u64 > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "truncated index: needed {} bytes, {} remain",
                buf.len(),
                self.remaining
            )));
        }
        self.inner.read_exact(buf).map_err(io_err)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    /// Validates that a length prefix of `len` elements (8 bytes each)
    /// fits in the remaining input.
    fn check_len(&self, len: u64) -> Result<()> {
        let bytes = len
            .checked_mul(8)
            .ok_or_else(|| Error::InvalidStructure(format!("corrupt length prefix {len}")))?;
        if bytes > self.remaining {
            return Err(Error::InvalidStructure(format!(
                "corrupt length prefix {len}: needs {bytes} bytes but only {} remain",
                self.remaining
            )));
        }
        Ok(())
    }
}

fn read_u64<R: Read>(r: &mut BoundedReader<R>) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<usize>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    for _ in 0..len {
        out.push(checked_usize(read_u64(r)?, "array element")?);
    }
    Ok(out)
}

fn read_f64_slice<R: Read>(r: &mut BoundedReader<R>) -> Result<Vec<f64>> {
    let len = read_u64(r)?;
    r.check_len(len)?;
    let mut out = Vec::with_capacity(checked_usize(len, "array length")?);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

fn write_csc<W: Write>(w: &mut W, m: &CscMatrix) -> Result<()> {
    w.write_all(&(m.nrows() as u64).to_le_bytes()).map_err(io_err)?;
    w.write_all(&(m.ncols() as u64).to_le_bytes()).map_err(io_err)?;
    write_usize_slice(w, m.indptr())?;
    write_usize_slice(w, m.indices())?;
    write_f64_slice(w, m.values())
}

fn read_csc<R: Read>(r: &mut BoundedReader<R>) -> Result<CscMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    // Trust boundary: run the full invariant audit (structure and
    // finiteness), not just the structural `from_raw` checks — a
    // length-valid payload can still smuggle NaN/∞ into the index.
    CscMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

fn write_csr<W: Write>(w: &mut W, m: &CsrMatrix) -> Result<()> {
    w.write_all(&(m.nrows() as u64).to_le_bytes()).map_err(io_err)?;
    w.write_all(&(m.ncols() as u64).to_le_bytes()).map_err(io_err)?;
    write_usize_slice(w, m.indptr())?;
    write_usize_slice(w, m.indices())?;
    write_f64_slice(w, m.values())
}

fn read_csr<R: Read>(r: &mut BoundedReader<R>) -> Result<CsrMatrix> {
    let nrows = checked_usize(read_u64(r)?, "matrix row count")?;
    let ncols = checked_usize(read_u64(r)?, "matrix column count")?;
    let indptr = read_usize_slice(r)?;
    let indices = read_usize_slice(r)?;
    let values = read_f64_slice(r)?;
    // Trust boundary: full audit, as in `read_csc`.
    CsrMatrix::try_from_parts(nrows, ncols, indptr, indices, values)
}

impl Bear {
    /// Writes the precomputed index to `path`.
    pub fn save(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path).map_err(io_err)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC).map_err(io_err)?;
        w.write_all(&(self.n1 as u64).to_le_bytes()).map_err(io_err)?;
        w.write_all(&(self.n2 as u64).to_le_bytes()).map_err(io_err)?;
        w.write_all(&self.c.to_le_bytes()).map_err(io_err)?;
        write_usize_slice(&mut w, self.perm.as_new_to_old())?;
        write_usize_slice(&mut w, &self.block_sizes)?;
        write_usize_slice(&mut w, &self.degrees)?;
        write_csc(&mut w, &self.l1_inv)?;
        write_csc(&mut w, &self.u1_inv)?;
        write_csc(&mut w, &self.l2_inv)?;
        write_csc(&mut w, &self.u2_inv)?;
        write_csr(&mut w, &self.h12)?;
        write_csr(&mut w, &self.h21)?;
        w.flush().map_err(io_err)
    }

    /// Reads a precomputed index previously written with [`Bear::save`].
    ///
    /// The file is a trust boundary: every matrix and the node ordering
    /// are re-validated on load via the `try_from_parts` constructors
    /// (sorted, in-bounds, duplicate-free indices; monotone `indptr`;
    /// bijective permutation; finite values), and the partition
    /// dimensions are cross-checked. A corrupt-but-length-valid payload
    /// therefore returns a typed error instead of producing an index
    /// that answers queries with garbage (see
    /// `crates/core/tests/persist_corruption.rs`).
    pub fn load(path: &Path) -> Result<Self> {
        crate::fail_point!("persist::load");
        let file = std::fs::File::open(path).map_err(io_err)?;
        let file_size = file.metadata().map_err(io_err)?.len();
        let mut r = BoundedReader::new(BufReader::new(file), file_size);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::InvalidStructure(format!(
                "not a BEAR index file (magic {magic:?})"
            )));
        }
        let n1 = checked_usize(read_u64(&mut r)?, "spoke count n1")?;
        let n2 = checked_usize(read_u64(&mut r)?, "hub count n2")?;
        let mut cbuf = [0u8; 8];
        r.read_exact(&mut cbuf)?;
        let c = f64::from_le_bytes(cbuf);
        if !(c > 0.0 && c < 1.0) {
            return Err(Error::InvalidStructure(format!("corrupt restart probability {c}")));
        }
        let perm = Permutation::try_from_parts(read_usize_slice(&mut r)?)?;
        let block_sizes = read_usize_slice(&mut r)?;
        let degrees = read_usize_slice(&mut r)?;
        let l1_inv = read_csc(&mut r)?;
        let u1_inv = read_csc(&mut r)?;
        let l2_inv = read_csc(&mut r)?;
        let u2_inv = read_csc(&mut r)?;
        let h12 = read_csr(&mut r)?;
        let h21 = read_csr(&mut r)?;

        // Cross-validate dimensions before accepting the index. The sum
        // is checked: corrupt headers near usize::MAX must fail typed,
        // not overflow (panic in debug, wrap to a bogus `n` in release).
        let n = n1.checked_add(n2).ok_or_else(|| {
            Error::InvalidStructure(format!("corrupt index: n1 {n1} + n2 {n2} overflows"))
        })?;
        if perm.len() != n
            || degrees.len() != n
            || block_sizes.iter().sum::<usize>() != n1
            || l1_inv.nrows() != n1
            || u1_inv.nrows() != n1
            || l2_inv.nrows() != n2
            || u2_inv.nrows() != n2
            || h12.nrows() != n1
            || h12.ncols() != n2
            || h21.nrows() != n2
            || h21.ncols() != n1
        {
            return Err(Error::InvalidStructure("inconsistent index dimensions".into()));
        }
        Ok(Bear {
            l1_inv,
            u1_inv,
            l2_inv,
            u2_inv,
            h12,
            h21,
            perm,
            n1,
            n2,
            c,
            block_sizes,
            degrees,
            // Preprocessing happened in the process that wrote the index;
            // a loaded index reports zero stage timings.
            timings: crate::stats::StageTimings::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::precompute::{Bear, BearConfig};
    use bear_graph::Graph;

    fn sample_graph() -> Graph {
        let mut edges = Vec::new();
        for v in 1..10 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        edges.push((3, 4));
        edges.push((4, 3));
        Graph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn save_load_round_trip_preserves_queries() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = std::env::temp_dir().join("bear_persist_round_trip.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.num_nodes(), bear.num_nodes());
        assert_eq!(loaded.n_hubs(), bear.n_hubs());
        for seed in 0..10 {
            assert_eq!(bear.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("bear_persist_garbage.idx");
        std::fs::write(&path, b"not an index at all").unwrap();
        assert!(Bear::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_magic() {
        let path = std::env::temp_dir().join("bear_persist_magic.idx");
        std::fs::write(&path, b"WRONGMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(Bear::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_truncated_file_without_huge_allocation() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = std::env::temp_dir().join("bear_persist_truncated.idx");
        bear.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncation anywhere in the file must produce a clean error.
        for keep in [full.len() / 4, full.len() / 2, full.len() - 3] {
            std::fs::write(&path, &full[..keep]).unwrap();
            assert!(Bear::load(&path).is_err(), "truncated to {keep} bytes");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupt_length_prefix() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::exact(0.1)).unwrap();
        let path = std::env::temp_dir().join("bear_persist_corrupt_len.idx");
        bear.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The first length prefix (the permutation's) sits right after
        // magic + n1 + n2 + c = 32 bytes. Blow it up to u64::MAX: a naive
        // `Vec::with_capacity` on it would abort the process, while the
        // bounded reader must reject it against the remaining file size.
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Bear::load(&path).unwrap_err();
        assert!(format!("{err}").contains("length prefix"), "unexpected error: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_preserves_approx_variant() {
        let g = sample_graph();
        let bear = Bear::new(&g, &BearConfig::approx(0.1, 1e-3)).unwrap();
        let path = std::env::temp_dir().join("bear_persist_approx.idx");
        bear.save(&path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bear.stats(), loaded.stats());
        assert_eq!(bear.query(2).unwrap(), loaded.query(2).unwrap());
    }
}
