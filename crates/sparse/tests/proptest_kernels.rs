//! Property-based tests of the sparse kernels against dense oracles.

use bear_sparse::ops::{add, axpby, spgemm, sub};
use bear_sparse::sparsify::drop_tolerance_csr;
use bear_sparse::triangular::{invert_triangular, solve_lower, solve_upper, Triangle};
use bear_sparse::{CooMatrix, CsrMatrix, DenseLu, DenseMatrix, Permutation, SparseLu};
use proptest::prelude::*;

/// Strategy: a random sparse matrix with the given shape bounds.
fn arb_matrix(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..(r * c).min(60)).prop_map(
            move |triplets| {
                let mut coo = CooMatrix::new(r, c);
                for (i, j, v) in triplets {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            },
        )
    })
}

/// Strategy: two random sparse matrices sharing one shape.
fn arb_matrix_pair(max_dim: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let m1 = proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..(r * c).min(50));
        let m2 = proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..(r * c).min(50));
        (m1, m2).prop_map(move |(t1, t2)| {
            let build = |triplets: Vec<(usize, usize, f64)>| {
                let mut coo = CooMatrix::new(r, c);
                for (i, j, v) in triplets {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            };
            (build(t1), build(t2))
        })
    })
}

/// Strategy: two random sparse matrices with compatible inner dimension.
fn arb_matmul_pair(max_dim: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(r, k, c)| {
        let m1 = proptest::collection::vec((0..r, 0..k, -10.0f64..10.0), 0..(r * k).min(50));
        let m2 = proptest::collection::vec((0..k, 0..c, -10.0f64..10.0), 0..(k * c).min(50));
        (m1, m2).prop_map(move |(t1, t2)| {
            let build = |rows: usize, cols: usize, triplets: Vec<(usize, usize, f64)>| {
                let mut coo = CooMatrix::new(rows, cols);
                for (i, j, v) in triplets {
                    coo.push(i, j, v);
                }
                coo.to_csr()
            };
            (build(r, k, t1), build(k, c, t2))
        })
    })
}

/// Strategy: a random square, strictly column-diagonally-dominant matrix
/// (the class RWR produces, where pivot-free LU is stable).
fn arb_dd_matrix(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..n * 3).prop_map(move |off| {
            let mut dense = DenseMatrix::zeros(n, n);
            for (i, j, v) in off {
                if i != j {
                    dense[(i, j)] = v;
                }
            }
            for j in 0..n {
                let col_sum: f64 = (0..n).map(|i| dense[(i, j)].abs()).sum();
                dense[(j, j)] = col_sum + 1.0;
            }
            dense.to_csr(0.0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spgemm_matches_dense_product((a, b) in arb_matmul_pair(12)) {
        let c = spgemm(&a, &b).unwrap();
        let oracle = a.to_dense().matmul(&b.to_dense()).unwrap();
        prop_assert!(c.to_dense().max_abs_diff(&oracle) < 1e-10);
    }

    #[test]
    fn add_sub_round_trip((a, b) in arb_matrix_pair(10)) {
        let sum = add(&a, &b).unwrap();
        let back = sub(&sum, &b).unwrap();
        prop_assert!(back.to_dense().max_abs_diff(&a.to_dense()) < 1e-10);
    }

    #[test]
    fn axpby_matches_dense((a, b) in arb_matrix_pair(10),
                           alpha in -3.0f64..3.0, beta in -3.0f64..3.0) {
        let got = axpby(alpha, &a, beta, &b).unwrap().to_dense();
        let mut want = DenseMatrix::zeros(a.nrows(), a.ncols());
        let (da, db) = (a.to_dense(), b.to_dense());
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                want[(i, j)] = alpha * da[(i, j)] + beta * db[(i, j)];
            }
        }
        prop_assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn transpose_is_involution_and_preserves_matvec(a in arb_matrix(12)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).cos()).collect();
        let via_t = a.transpose().matvec(&x).unwrap();
        let via_impl = a.matvec_transpose(&x).unwrap();
        for (p, q) in via_t.iter().zip(&via_impl) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn csr_csc_round_trip(a in arb_matrix(12)) {
        prop_assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn sparse_lu_reconstructs_dd_matrix(a in arb_dd_matrix(14)) {
        let lu = SparseLu::factor(&a.to_csc()).unwrap();
        let prod = spgemm(&lu.l().to_csr(), &lu.u().to_csr()).unwrap();
        prop_assert!(prod.to_dense().max_abs_diff(&a.to_dense()) < 1e-8);
    }

    #[test]
    fn sparse_lu_solve_matches_dense_lu(a in arb_dd_matrix(14)) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let xs = SparseLu::factor(&a.to_csc()).unwrap().solve(&b).unwrap();
        let xd = DenseLu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (p, q) in xs.iter().zip(&xd) {
            prop_assert!((p - q).abs() < 1e-7, "{p} vs {q}");
        }
    }

    #[test]
    fn inverted_factors_give_inverse(a in arb_dd_matrix(10)) {
        let n = a.nrows();
        let lu = SparseLu::factor(&a.to_csc()).unwrap();
        let (linv, uinv) = lu.invert_factors().unwrap();
        let ainv = spgemm(&uinv.to_csr(), &linv.to_csr()).unwrap();
        let prod = spgemm(&a, &ainv).unwrap();
        prop_assert!(prod.approx_eq(&CsrMatrix::identity(n), 1e-7));
    }

    #[test]
    fn triangular_inverse_matches_dense_inverse(a in arb_dd_matrix(10)) {
        let lu = SparseLu::factor(&a.to_csc()).unwrap();
        let linv = invert_triangular(lu.l(), Triangle::Lower, true).unwrap();
        let uinv = invert_triangular(lu.u(), Triangle::Upper, false).unwrap();
        let li = spgemm(&linv.to_csr(), &lu.l().to_csr()).unwrap();
        let ui = spgemm(&uinv.to_csr(), &lu.u().to_csr()).unwrap();
        let n = a.nrows();
        prop_assert!(li.approx_eq(&CsrMatrix::identity(n), 1e-8));
        prop_assert!(ui.approx_eq(&CsrMatrix::identity(n), 1e-8));
    }

    #[test]
    fn triangular_solves_invert_matvec(a in arb_dd_matrix(12)) {
        let lu = SparseLu::factor(&a.to_csc()).unwrap();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        // b = L x, solve back.
        let mut b = lu.l().matvec(&x).unwrap();
        solve_lower(lu.l(), &mut b, true).unwrap();
        for (p, q) in b.iter().zip(&x) {
            prop_assert!((p - q).abs() < 1e-9);
        }
        let mut b = lu.u().matvec(&x).unwrap();
        solve_upper(lu.u(), &mut b).unwrap();
        for (p, q) in b.iter().zip(&x) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_permutation_preserves_quadratic_form(a in arb_dd_matrix(10), seed in 0u64..100) {
        let n = a.nrows();
        // Pseudo-random permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(99);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 32) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let pa = p.permute_symmetric(&a).unwrap();
        // xᵀ A y is invariant when x, y are permuted along with A.
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).ln()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ay = a.matvec(&y).unwrap();
        let form: f64 = x.iter().zip(&ay).map(|(p, q)| p * q).sum();
        let px = p.permute_vec(&x).unwrap();
        let py = p.permute_vec(&y).unwrap();
        let pay = pa.matvec(&py).unwrap();
        let pform: f64 = px.iter().zip(&pay).map(|(p, q)| p * q).sum();
        prop_assert!((form - pform).abs() < 1e-9);
    }

    #[test]
    fn drop_tolerance_never_increases_nnz_and_keeps_large(a in arb_matrix(12), xi in 0.0f64..5.0) {
        let d = drop_tolerance_csr(&a, xi);
        prop_assert!(d.nnz() <= a.nnz());
        for (r, c, v) in a.iter() {
            if v.abs() >= xi && xi > 0.0 {
                prop_assert_eq!(d.get(r, c), v);
            }
        }
        for (_, _, v) in d.iter() {
            prop_assert!(xi <= 0.0 || v.abs() >= xi);
        }
    }

    #[test]
    fn dense_qr_reconstructs_and_q_orthogonal(a in arb_dd_matrix(10)) {
        let d = a.to_dense();
        let qr = bear_sparse::qr::DenseQr::factor(&d).unwrap();
        let back = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(back.max_abs_diff(&d) < 1e-8);
        let n = d.nrows();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        prop_assert!(qtq.max_abs_diff(&DenseMatrix::identity(n)) < 1e-8);
    }

    #[test]
    fn dense_lu_inverse_is_two_sided(a in arb_dd_matrix(10)) {
        let d = a.to_dense();
        let inv = DenseLu::factor(&d).unwrap().inverse().unwrap();
        let n = d.nrows();
        prop_assert!(d.matmul(&inv).unwrap().max_abs_diff(&DenseMatrix::identity(n)) < 1e-8);
        prop_assert!(inv.matmul(&d).unwrap().max_abs_diff(&DenseMatrix::identity(n)) < 1e-8);
    }
}
