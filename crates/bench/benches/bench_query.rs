//! Criterion micro-benchmark: query latency of BEAR vs the iterative
//! method and LU decomposition (the paper's Figure 1(b) comparison,
//! reduced to its fast core).

use bear_bench::params::params_for;
use bear_bench::{build_method, MethodSpec};
use bear_datasets::dataset_by_name;
use bear_sparse::mem::MemBudget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    for dataset in ["small_routing", "small_web"] {
        let g = dataset_by_name(dataset).unwrap().load();
        let params = params_for(dataset);
        let budget = MemBudget::unlimited();
        for spec in [
            MethodSpec::Bear { xi: 0.0 },
            MethodSpec::Bear { xi: 1e-4 },
            MethodSpec::LuDecomp,
            MethodSpec::Iterative,
        ] {
            let solver = build_method(&spec, &g, &params, &budget).unwrap();
            let label = format!("{}/{}", dataset, spec.display_name());
            group.bench_with_input(BenchmarkId::from_parameter(label), &solver, |b, s| {
                let mut seed = 0usize;
                b.iter(|| {
                    seed = (seed + 17) % s.num_nodes();
                    std::hint::black_box(s.query(seed).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
