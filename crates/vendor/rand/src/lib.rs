//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this crate vendors
//! exactly the surface the workspace uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! behind every RNG is xoshiro256++ seeded via SplitMix64 — statistically
//! solid for test-data generation, though streams differ from the real
//! `rand` crate (nothing in the workspace depends on specific streams,
//! only on determinism per seed).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "natural" domain by [`Rng::gen`]
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the type's natural domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the RNG from OS entropy. This offline stand-in derives the
    /// seed from the current time instead of the (unavailable) OS RNG.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stands in for rand's ChaCha12-based StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_split_mix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_split_mix(seed)
        }
    }

    /// Small fast generator; same engine as [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(StdRng::seed_from_u64(seed ^ 0xdead_beef_cafe_f00d))
        }
    }
}

/// Distribution types.
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// Types that can be sampled repeatedly from an RNG.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T: Copy + PartialOrd> Distribution<T> for Uniform<T>
    where
        core::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.low..self.high).sample_from(rng)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in place");
    }
}
