//! Reproduces **Table 4** of the paper: per-dataset structural statistics
//! and the nonzero counts of BEAR's precomputed matrices.
//!
//! ```text
//! cargo run --release -p bear-bench --bin table4 [--datasets a,b] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{ExperimentResult, ResultRow};
use bear_core::rwr::{build_h, RwrConfig};
use bear_core::{Bear, BearConfig};
use bear_datasets::{all_datasets, rmat_family};

fn main() {
    let args = Args::from_env();
    let default_names: Vec<String> =
        all_datasets().iter().chain(rmat_family().iter()).map(|d| d.name.to_string()).collect();
    let defaults: Vec<&str> = default_names.iter().map(|s| s.as_str()).collect();
    let opts = CommonOpts::from_args(&args, &defaults);

    let mut out = ExperimentResult::new(
        "table_4",
        "dataset statistics and precomputed-matrix nonzeros (Table 4)",
    );
    println!(
        "{:<16} {:>8} {:>9} {:>7} {:>12} {:>10} {:>12} {:>14} {:>14}",
        "dataset",
        "n",
        "m",
        "n2",
        "sum n1i^2",
        "|H|",
        "|H12|+|H21|",
        "|L1-1|+|U1-1|",
        "|L2-1|+|U2-1|"
    );
    for name in &opts.datasets {
        let g = load_dataset(name);
        let h = build_h(&g, &RwrConfig::default()).expect("H");
        let bear = Bear::new(&g, &BearConfig::default()).expect("BEAR preprocessing");
        let st = bear.stats();
        println!(
            "{:<16} {:>8} {:>9} {:>7} {:>12} {:>10} {:>12} {:>14} {:>14}",
            name,
            st.n,
            g.num_edges(),
            st.n2,
            st.sum_block_sq,
            h.nnz(),
            st.nnz_cross(),
            st.nnz_spoke_factors(),
            st.nnz_hub_factors(),
        );
        let mut row = ResultRow::new(name, "BEAR-Exact");
        row.memory_bytes = Some(st.bytes);
        row.param = Some(format!(
            "n={} m={} n2={} sum_sq={} nnz_h={} cross={} spoke={} hub={}",
            st.n,
            g.num_edges(),
            st.n2,
            st.sum_block_sq,
            h.nnz(),
            st.nnz_cross(),
            st.nnz_spoke_factors(),
            st.nnz_hub_factors()
        ));
        out.rows.push(row);
    }
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
