//! Iterative linear solvers for sparse systems.
//!
//! Used by the memory-lean hub solver (`bear-core::hub_iterative`), which
//! keeps the Schur complement `S` itself instead of its inverted LU
//! factors and solves `S x = b` per query. `S` inherits diagonal
//! dominance from `H`, so Jacobi-preconditioned iterations converge
//! geometrically; BiCGSTAB is provided for faster convergence on harder
//! systems.

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};

/// Options shared by the iterative solvers.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Stop when the residual 2-norm falls below
    /// `rel_tolerance * ||b||₂` (plus a tiny absolute floor).
    pub rel_tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { rel_tolerance: 1e-12, max_iterations: 10_000 }
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn rescale(mut x: Vec<f64>, scale: f64) -> Vec<f64> {
    for v in &mut x {
        *v *= scale;
    }
    x
}

/// Extracts the diagonal of a square CSR matrix, failing on a zero.
fn diagonal(a: &CsrMatrix) -> Result<Vec<f64>> {
    let n = a.nrows();
    let mut d = Vec::with_capacity(n);
    for i in 0..n {
        let v = a.get(i, i);
        if v == 0.0 {
            return Err(Error::SingularMatrix { at: i });
        }
        d.push(v);
    }
    Ok(d)
}

/// Jacobi iteration `x ← D⁻¹ (b − (A − D) x)` for diagonally dominant
/// `A`. Simple, allocation-light, and exactly the kind of solve the
/// Schur complement of an RWR system admits.
pub fn jacobi(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Vec<f64>> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n {
        return Err(Error::DimensionMismatch {
            op: "jacobi",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.len(), 1),
        });
    }
    let d = diagonal(a)?;
    let bnorm = norm2(b);
    let mut x = vec![0.0f64; n];
    if bnorm < 1e-290 {
        return Ok(x);
    }
    // Normalize by ‖b‖ for scale-independent arithmetic (see bicgstab).
    let b: Vec<f64> = b.iter().map(|v| v / bnorm).collect();
    let target = opts.rel_tolerance;
    let mut next = vec![0.0f64; n];
    for _ in 0..opts.max_iterations {
        // next = D^{-1} (b - (A - D) x)
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c != i {
                    acc -= v * x[c];
                }
            }
            next[i] = acc / d[i];
        }
        std::mem::swap(&mut x, &mut next);
        // Residual check (reuses `next` as scratch).
        let ax = a.matvec(&x)?;
        let mut res = 0.0;
        for i in 0..n {
            let r = b[i] - ax[i];
            res += r * r;
        }
        if res.sqrt() <= target {
            return Ok(rescale(x, bnorm));
        }
    }
    Err(Error::DidNotConverge { what: "jacobi", iterations: opts.max_iterations })
}

/// BiCGSTAB (van der Vorst) with Jacobi (diagonal) preconditioning.
/// Converges on general nonsymmetric systems; used when the plain Jacobi
/// iteration is too slow.
pub fn bicgstab(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Vec<f64>> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n {
        return Err(Error::DimensionMismatch {
            op: "bicgstab",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.len(), 1),
        });
    }
    let d = diagonal(a)?;
    let precond = |v: &[f64]| -> Vec<f64> { v.iter().zip(&d).map(|(x, di)| x / di).collect() };

    let bnorm = norm2(b);
    let mut x = vec![0.0f64; n];
    // A (near-)zero right-hand side has the (near-)zero solution; bailing
    // here also avoids denormal-range dot products that would otherwise
    // register as Lanczos breakdowns.
    if bnorm < 1e-290 {
        return Ok(x);
    }
    // Solve the normalized system S x' = b/‖b‖ (and rescale at the end)
    // so every inner product is O(1) regardless of the RHS's scale —
    // un-normalized, a 1e-150-scale RHS makes ⟨r̂, r⟩ ≈ ‖b‖² underflow to
    // zero and masquerade as a Lanczos breakdown.
    let b: Vec<f64> = b.iter().map(|v| v / bnorm).collect();
    let target = opts.rel_tolerance;
    let mut r: Vec<f64> = b.clone();
    if norm2(&r) <= target {
        return Ok(x);
    }
    let mut r_hat = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0f64; n];
    let mut p = vec![0.0f64; n];
    let mut restarts = 0usize;

    for iter in 0..opts.max_iterations {
        let rho_next = dot(&r_hat, &r);
        if rho_next.abs() < 1e-300 {
            // Lanczos breakdown (r ⟂ r̂): accept the iterate if its
            // residual is at tolerance, otherwise restart the Krylov
            // process from the current residual — the standard remedy.
            if norm2(&r) <= target * 1e3 {
                return Ok(rescale(x, bnorm));
            }
            restarts += 1;
            if restarts > 50 {
                return Err(Error::DidNotConverge {
                    what: "bicgstab (breakdown)",
                    iterations: iter,
                });
            }
            r_hat = r.clone();
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            v.iter_mut().for_each(|z| *z = 0.0);
            p.iter_mut().for_each(|z| *z = 0.0);
            continue;
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let y = precond(&p);
        v = a.matvec(&y)?;
        let denom = dot(&r_hat, &v);
        if denom.abs() < 1e-300 {
            if norm2(&r) <= target * 1e3 {
                return Ok(rescale(x, bnorm));
            }
            return Err(Error::DidNotConverge { what: "bicgstab (breakdown)", iterations: iter });
        }
        alpha = rho / denom;
        let s: Vec<f64> = r.iter().zip(&v).map(|(ri, vi)| ri - alpha * vi).collect();
        if norm2(&s) <= target {
            for i in 0..n {
                x[i] += alpha * y[i];
            }
            return Ok(rescale(x, bnorm));
        }
        let z = precond(&s);
        let t = a.matvec(&z)?;
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            if norm2(&s) <= target * 1e3 {
                for i in 0..n {
                    x[i] += alpha * y[i];
                }
                return Ok(rescale(x, bnorm));
            }
            return Err(Error::DidNotConverge { what: "bicgstab (breakdown)", iterations: iter });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * y[i] + omega * z[i];
            r[i] = s[i] - omega * t[i];
        }
        if norm2(&r) <= target {
            return Ok(rescale(x, bnorm));
        }
        if omega.abs() < 1e-300 {
            return Err(Error::DidNotConverge { what: "bicgstab (breakdown)", iterations: iter });
        }
    }
    Err(Error::DidNotConverge { what: "bicgstab", iterations: opts.max_iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::DenseLu;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dd(n: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut row_sums = vec![0.0f64; n];
        for (i, ri) in row_sums.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && rng.gen_bool(0.15) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    coo.push(i, j, v);
                    *ri += v.abs();
                }
            }
        }
        for (i, &s) in row_sums.iter().enumerate() {
            coo.push(i, i, s + 1.0);
        }
        coo.to_csr()
    }

    fn check_solver(
        solve: impl Fn(&CsrMatrix, &[f64], &SolveOptions) -> Result<Vec<f64>>,
        seed: u64,
    ) {
        let n = 30;
        let a = random_dd(n, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x = solve(&a, &b, &SolveOptions::default()).unwrap();
        let oracle = DenseLu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (p, q) in x.iter().zip(&oracle) {
            assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    #[test]
    fn jacobi_matches_direct_solve() {
        check_solver(jacobi, 1);
        check_solver(jacobi, 2);
    }

    #[test]
    fn bicgstab_matches_direct_solve() {
        check_solver(bicgstab, 3);
        check_solver(bicgstab, 4);
    }

    #[test]
    fn solvers_reject_zero_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let b = vec![1.0, 1.0];
        assert!(matches!(
            jacobi(&a, &b, &SolveOptions::default()),
            Err(Error::SingularMatrix { .. })
        ));
        assert!(matches!(
            bicgstab(&a, &b, &SolveOptions::default()),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn solvers_reject_dimension_mismatch() {
        let a = CsrMatrix::identity(3);
        assert!(jacobi(&a, &[1.0], &SolveOptions::default()).is_err());
        assert!(bicgstab(&a, &[1.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn jacobi_diverges_gracefully_on_non_dominant_system() {
        // A system where Jacobi's iteration matrix has spectral radius > 1.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        let opts = SolveOptions { max_iterations: 50, ..SolveOptions::default() };
        assert!(matches!(jacobi(&a, &[1.0, 1.0], &opts), Err(Error::DidNotConverge { .. })));
    }

    #[test]
    fn zero_rhs_yields_zero_solution() {
        let a = random_dd(10, 9);
        let x = bicgstab(&a, &[0.0; 10], &SolveOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
