//! Synthetic graph generators.
//!
//! The paper's synthetic experiments use R-MAT with a tunable upper-left
//! probability `p_ul` (Section 4.4); the real-world datasets are
//! substituted by generator-based stand-ins (see `bear-datasets`), built
//! from these primitives.

mod erdos_renyi;
mod forest_fire;
mod hub_spoke;
mod pref_attach;
mod rmat;

pub use erdos_renyi::erdos_renyi;
pub use forest_fire::{forest_fire, ForestFireConfig};
pub use hub_spoke::{hub_and_spoke, HubSpokeConfig};
pub use pref_attach::preferential_attachment;
pub use rmat::{rmat, RmatConfig};
