//! Parallel versions of the embarrassingly parallel kernels.
//!
//! BEAR's preprocessing is dominated by two column-independent
//! computations — triangular-factor inversion (one sparse solve per
//! column) and SpGEMM (one accumulator pass per row) — so both scale
//! nearly linearly with threads via simple range splitting over
//! `std::thread::scope`. Results are bit-identical to the serial
//! kernels (each column/row is computed by exactly the same code).
//!
//! Thread-spawn overhead is a few hundred microseconds per call, so the
//! parallel paths only pay off once the serial kernel takes milliseconds —
//! i.e. on the large hub-heavy inputs where BEAR's preprocessing actually
//! hurts; callers (e.g. `BearConfig::threads`) should keep `threads = 1`
//! for small inputs.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::ops::spgemm;
use crate::triangular::{spsolve, SpSolveWorkspace, Triangle};

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// length.
fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Parallel triangular inversion: like
/// [`crate::triangular::invert_triangular`] but computing column ranges on
/// `threads` scoped threads.
pub fn par_invert_triangular(
    g: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    threads: usize,
) -> Result<CscMatrix> {
    let n = g.ncols();
    if g.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "par_invert_triangular",
            lhs: (g.nrows(), g.ncols()),
            rhs: (n, n),
        });
    }
    let ranges = split_ranges(n, threads);
    if ranges.len() <= 1 {
        return crate::triangular::invert_triangular(g, triangle, unit_diag);
    }

    type ColChunk = Result<(Vec<usize>, Vec<usize>, Vec<f64>)>;
    let chunks: Vec<ColChunk> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                scope.spawn(move || -> ColChunk {
                    let mut ws = SpSolveWorkspace::new(n);
                    let mut col_ptr = Vec::with_capacity(range.len());
                    let mut indices = Vec::new();
                    let mut values = Vec::new();
                    for j in range {
                        let (pat, vals) = spsolve(g, triangle, &[j], &[1.0], unit_diag, &mut ws)?;
                        indices.extend_from_slice(&pat);
                        values.extend_from_slice(&vals);
                        col_ptr.push(indices.len());
                    }
                    Ok((col_ptr, indices, values))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });

    // Stitch the chunks into one CSC matrix.
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for chunk in chunks {
        let (col_ptr, idx, val) = chunk?;
        let offset = indices.len();
        indptr.extend(col_ptr.iter().map(|&p| p + offset));
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&val);
    }
    Ok(CscMatrix::from_raw_unchecked(n, n, indptr, indices, values))
}

/// Parallel SpGEMM: row ranges of `A` computed on `threads` threads and
/// stitched together.
pub fn par_spgemm(a: &CsrMatrix, b: &CsrMatrix, threads: usize) -> Result<CsrMatrix> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            op: "par_spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let ranges = split_ranges(a.nrows(), threads);
    if ranges.len() <= 1 {
        return spgemm(a, b);
    }

    type RowChunk = Result<CsrMatrix>;
    let chunks: Vec<RowChunk> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                scope.spawn(move || -> RowChunk {
                    let sub = a.submatrix(range.start, range.end, 0, a.ncols())?;
                    spgemm(&sub, b)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });

    let mut indptr = Vec::with_capacity(a.nrows() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for chunk in chunks {
        let m = chunk?;
        let offset = indices.len();
        indptr.extend(m.indptr()[1..].iter().map(|&p| p + offset));
        indices.extend_from_slice(m.indices());
        values.extend_from_slice(m.values());
    }
    Ok(CsrMatrix::from_raw_unchecked(a.nrows(), b.ncols(), indptr, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::lu::SparseLu;
    use crate::triangular::invert_triangular;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(r: usize, c: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(r, c);
        for i in 0..r {
            for j in 0..c {
                if rng.gen_bool(0.1) {
                    coo.push(i, j, rng.gen_range(-2.0..2.0));
                }
            }
        }
        coo.to_csr()
    }

    fn random_dd(n: usize, seed: u64) -> CscMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut sums = vec![0.0; n];
        for i in 0..n {
            for (j, sj) in sums.iter_mut().enumerate() {
                if i != j && rng.gen_bool(0.1) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    coo.push(i, j, v);
                    *sj += v.abs(); // column dominance
                }
            }
        }
        for (j, &s) in sums.iter().enumerate() {
            coo.push(j, j, s + 1.0);
        }
        coo.to_csr().to_csc()
    }

    #[test]
    fn split_ranges_covers_everything() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
        assert_eq!(split_ranges(2, 8).len(), 2);
        assert_eq!(split_ranges(0, 4).len(), 1);
    }

    #[test]
    fn par_spgemm_matches_serial() {
        let a = random_matrix(40, 30, 1);
        let b = random_matrix(30, 25, 2);
        let serial = spgemm(&a, &b).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_spgemm(&a, &b, threads).unwrap(), serial);
        }
    }

    #[test]
    fn par_invert_matches_serial() {
        let a = random_dd(50, 3);
        let lu = SparseLu::factor(&a).unwrap();
        let serial_l = invert_triangular(lu.l(), Triangle::Lower, true).unwrap();
        let serial_u = invert_triangular(lu.u(), Triangle::Upper, false).unwrap();
        for threads in [2, 4] {
            let par_l = par_invert_triangular(lu.l(), Triangle::Lower, true, threads).unwrap();
            let par_u = par_invert_triangular(lu.u(), Triangle::Upper, false, threads).unwrap();
            assert_eq!(par_l.to_csr(), serial_l.to_csr());
            assert_eq!(par_u.to_csr(), serial_u.to_csr());
        }
    }

    #[test]
    fn par_kernels_validate_dimensions() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        assert!(par_spgemm(&a, &b, 2).is_err());
        let rect = random_matrix(3, 4, 5).to_csc();
        assert!(par_invert_triangular(&rect, Triangle::Lower, true, 2).is_err());
    }

    #[test]
    fn par_invert_propagates_singularity() {
        // Lower triangular with a zero diagonal entry.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(1, 0, 1.0);
        let l = coo.to_csr().to_csc();
        assert!(par_invert_triangular(&l, Triangle::Lower, false, 2).is_err());
    }
}
