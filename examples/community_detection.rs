//! Local community detection with RWR — the application family the
//! paper's introduction leads with (Andersen, Chung & Lang, FOCS 2006):
//! compute RWR scores around a seed, then run a conductance sweep cut
//! over nodes in decreasing degree-normalized score.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use bear_core::{Bear, BearConfig};
use bear_graph::conductance::sweep_cut;
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A graph of small caves hanging off hubs: each cave is a natural
    // local community.
    let mut rng = StdRng::seed_from_u64(42);
    let graph = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 6,
            num_caves: 80,
            max_cave_size: 12,
            cave_density: 0.5,
            hub_links: 1,
            hub_density: 0.5,
        },
        &mut rng,
    );
    println!("graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let bear = Bear::new(&graph, &BearConfig::exact(0.4)).expect("preprocessing");
    let sym = graph.symmetrized_pattern();

    // Ground truth: the caves are exactly the connected components left
    // when the hubs (ids 0..6) are removed. Seed inside a large cave.
    let mut active = vec![true; graph.num_nodes()];
    active[..6].fill(false);
    let caves = bear_graph::components::components_in_subset(&sym, &active);
    let cave =
        caves.iter().filter(|c| c.len() >= 8).max_by_key(|c| c.len()).expect("a large cave exists");
    let seed = cave[0];
    println!("ground-truth cave of seed {seed}: {} nodes", cave.len());

    // RWR scores around the seed, then the library sweep cut.
    let scores = bear.query(seed).expect("query");
    let cut = sweep_cut(&graph, &scores, 60);
    println!(
        "seed {seed}: community of {} nodes with conductance {:.4}",
        cut.community.len(),
        cut.conductance
    );
    println!("members: {:?}", cut.community);

    // The recovered community must contain the seed and substantially
    // overlap the ground-truth cave (Jaccard similarity).
    assert!(cut.community.contains(&seed));
    let overlap = cut.community.iter().filter(|u| cave.contains(u)).count();
    let jaccard = overlap as f64 / (cut.community.len() + cave.len() - overlap) as f64;
    println!("overlap with ground-truth cave: {overlap} nodes, Jaccard {jaccard:.2}");
    assert!(jaccard > 0.5, "sweep cut failed to recover the cave");
    println!("Jaccard > 0.5 with the planted community ✓");
}
