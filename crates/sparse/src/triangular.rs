//! Triangular solves and triangular-factor inversion.
//!
//! BEAR materializes `L⁻¹` and `U⁻¹` of its LU factors (Algorithm 1,
//! lines 5 and 8). Inverting a sparse triangular matrix column by column is
//! done with a CSparse-style sparse-RHS solve: first compute the
//! *reach* of the right-hand side pattern over the factor's dependency
//! graph (a DFS), then run substitution only over reached positions, so the
//! total cost is proportional to the output's nonzero count — this is what
//! keeps the paper's Observation 1 (degree-ordering keeps the inverses
//! sparse) profitable.

use crate::block::DenseBlock;
use crate::csc::CscMatrix;
use crate::error::{Error, Result};

/// Whether a triangular matrix is lower or upper triangular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular: dependencies flow from smaller to larger indices.
    Lower,
    /// Upper triangular: dependencies flow from larger to smaller indices.
    Upper,
}

/// In-place dense-RHS forward substitution `L x = b` for a CSC lower
/// triangular matrix. If `unit_diag`, the diagonal is taken as 1 and any
/// stored diagonal entries are ignored.
pub fn solve_lower(l: &CscMatrix, b: &mut [f64], unit_diag: bool) -> Result<()> {
    let n = l.ncols();
    if l.nrows() != n || b.len() != n {
        return Err(Error::DimensionMismatch {
            op: "solve_lower",
            lhs: (l.nrows(), l.ncols()),
            rhs: (b.len(), 1),
        });
    }
    for j in 0..n {
        let (rows, vals) = l.col(j);
        let diag_pos = rows.binary_search(&j);
        if !unit_diag {
            let d = match diag_pos {
                Ok(p) => vals[p],
                Err(_) => return Err(Error::SingularMatrix { at: j }),
            };
            if d == 0.0 {
                return Err(Error::SingularMatrix { at: j });
            }
            b[j] /= d;
        }
        let xj = b[j];
        if xj == 0.0 {
            continue;
        }
        let start = match diag_pos {
            Ok(p) => p + 1,
            Err(p) => p,
        };
        for (&i, &v) in rows[start..].iter().zip(&vals[start..]) {
            b[i] -= v * xj;
        }
    }
    Ok(())
}

/// In-place dense-RHS backward substitution `U x = b` for a CSC upper
/// triangular matrix.
pub fn solve_upper(u: &CscMatrix, b: &mut [f64]) -> Result<()> {
    let n = u.ncols();
    if u.nrows() != n || b.len() != n {
        return Err(Error::DimensionMismatch {
            op: "solve_upper",
            lhs: (u.nrows(), u.ncols()),
            rhs: (b.len(), 1),
        });
    }
    for j in (0..n).rev() {
        let (rows, vals) = u.col(j);
        let diag_pos = match rows.binary_search(&j) {
            Ok(p) => p,
            Err(_) => return Err(Error::SingularMatrix { at: j }),
        };
        let d = vals[diag_pos];
        if d == 0.0 {
            return Err(Error::SingularMatrix { at: j });
        }
        b[j] /= d;
        let xj = b[j];
        if xj == 0.0 {
            continue;
        }
        for (&i, &v) in rows[..diag_pos].iter().zip(&vals[..diag_pos]) {
            b[i] -= v * xj;
        }
    }
    Ok(())
}

/// Multi-RHS forward substitution `L X = B` in place on a column-major
/// block: the blocked form of [`solve_lower`]. Column `j` of the result
/// is bit-identical to `solve_lower(l, b.col(j), unit_diag)` — per
/// right-hand side the elimination applies the same updates in the same
/// order — but each matrix column's structure (and its diagonal lookup)
/// is resolved once for all `k` right-hand sides. Width-1 blocks
/// delegate to the vector kernel outright.
pub fn solve_lower_block(l: &CscMatrix, b: &mut DenseBlock, unit_diag: bool) -> Result<()> {
    let n = l.ncols();
    if l.nrows() != n || b.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "solve_lower_block",
            lhs: (l.nrows(), l.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let k = b.ncols();
    if k == 1 {
        return solve_lower(l, b.col_mut(0), unit_diag);
    }
    for j in 0..n {
        let (rows, vals) = l.col(j);
        let diag_pos = rows.binary_search(&j);
        let diag = if unit_diag {
            None
        } else {
            let d = match diag_pos {
                Ok(p) => vals[p],
                Err(_) => return Err(Error::SingularMatrix { at: j }),
            };
            if d == 0.0 {
                return Err(Error::SingularMatrix { at: j });
            }
            Some(d)
        };
        let start = match diag_pos {
            Ok(p) => p + 1,
            Err(p) => p,
        };
        for col in 0..k {
            let bj = b.col_mut(col);
            if let Some(d) = diag {
                bj[j] /= d;
            }
            let xj = bj[j];
            if xj == 0.0 {
                continue;
            }
            for (&i, &v) in rows[start..].iter().zip(&vals[start..]) {
                bj[i] -= v * xj;
            }
        }
    }
    Ok(())
}

/// Multi-RHS backward substitution `U X = B` in place on a column-major
/// block: the blocked form of [`solve_upper`], with the same per-column
/// bit-identity guarantee as [`solve_lower_block`].
pub fn solve_upper_block(u: &CscMatrix, b: &mut DenseBlock) -> Result<()> {
    let n = u.ncols();
    if u.nrows() != n || b.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "solve_upper_block",
            lhs: (u.nrows(), u.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let k = b.ncols();
    if k == 1 {
        return solve_upper(u, b.col_mut(0));
    }
    for j in (0..n).rev() {
        let (rows, vals) = u.col(j);
        let diag_pos = match rows.binary_search(&j) {
            Ok(p) => p,
            Err(_) => return Err(Error::SingularMatrix { at: j }),
        };
        let d = vals[diag_pos];
        if d == 0.0 {
            return Err(Error::SingularMatrix { at: j });
        }
        for col in 0..k {
            let bj = b.col_mut(col);
            bj[j] /= d;
            let xj = bj[j];
            if xj == 0.0 {
                continue;
            }
            for (&i, &v) in rows[..diag_pos].iter().zip(&vals[..diag_pos]) {
                bj[i] -= v * xj;
            }
        }
    }
    Ok(())
}

/// Reusable workspace for sparse-RHS triangular solves, so repeated solves
/// (e.g. one per column during inversion) allocate nothing.
pub struct SpSolveWorkspace {
    /// Dense value scratch, zeroed outside the touched set.
    x: Vec<f64>,
    /// Visited marks for the reach DFS.
    marked: Vec<bool>,
    /// DFS stack of (node, next edge offset within the node's column).
    dfs: Vec<(usize, usize)>,
    /// Output topological order (reverse postorder).
    order: Vec<usize>,
}

impl SpSolveWorkspace {
    /// Creates a workspace for matrices of dimension `n`.
    pub fn new(n: usize) -> Self {
        SpSolveWorkspace {
            x: vec![0.0; n],
            marked: vec![false; n],
            dfs: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Computes the reach of `pattern` in the dependency graph of the
    /// triangular matrix `g` (edges j -> i for each stored off-diagonal
    /// entry `g[i, j]`), leaving `self.order` in topological order.
    fn reach(&mut self, g: &CscMatrix, pattern: &[usize]) {
        self.order.clear();
        for &start in pattern {
            if self.marked[start] {
                continue;
            }
            self.dfs.push((start, 0));
            self.marked[start] = true;
            while let Some(&mut (node, ref mut edge)) = self.dfs.last_mut() {
                let (rows, _) = g.col(node);
                let mut advanced = false;
                while *edge < rows.len() {
                    let next = rows[*edge];
                    *edge += 1;
                    if next != node && !self.marked[next] {
                        self.marked[next] = true;
                        self.dfs.push((next, 0));
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    self.order.push(node);
                    self.dfs.pop();
                }
            }
        }
        // Postorder gives dependents before dependencies; reverse it so a
        // node is processed before the nodes it updates.
        self.order.reverse();
    }
}

/// Solves `G x = b` where `G` is triangular and `b` is sparse, given as a
/// pattern/value pair. Returns `(pattern, values)` of the solution with the
/// pattern sorted ascending. Cost is proportional to the number of
/// floating-point operations performed (CSparse `cs_spsolve`).
pub fn spsolve(
    g: &CscMatrix,
    triangle: Triangle,
    b_pattern: &[usize],
    b_values: &[f64],
    unit_diag: bool,
    ws: &mut SpSolveWorkspace,
) -> Result<(Vec<usize>, Vec<f64>)> {
    let n = g.ncols();
    if g.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "spsolve",
            lhs: (g.nrows(), g.ncols()),
            rhs: (n, n),
        });
    }
    debug_assert_eq!(b_pattern.len(), b_values.len());
    ws.reach(g, b_pattern);
    // Scatter b.
    for (&i, &v) in b_pattern.iter().zip(b_values) {
        ws.x[i] = v;
    }
    // Substitution in topological order.
    for idx in 0..ws.order.len() {
        let j = ws.order[idx];
        let (rows, vals) = g.col(j);
        let diag_pos = rows.binary_search(&j);
        if !unit_diag {
            let d = match diag_pos {
                Ok(p) => vals[p],
                Err(_) => {
                    ws.clear();
                    return Err(Error::SingularMatrix { at: j });
                }
            };
            if d == 0.0 {
                ws.clear();
                return Err(Error::SingularMatrix { at: j });
            }
            ws.x[j] /= d;
        }
        let xj = ws.x[j];
        if xj == 0.0 {
            continue;
        }
        match (triangle, diag_pos) {
            (Triangle::Lower, Ok(p)) => {
                for (&i, &v) in rows[p + 1..].iter().zip(&vals[p + 1..]) {
                    ws.x[i] -= v * xj;
                }
            }
            (Triangle::Lower, Err(p)) => {
                for (&i, &v) in rows[p..].iter().zip(&vals[p..]) {
                    ws.x[i] -= v * xj;
                }
            }
            (Triangle::Upper, Ok(p)) => {
                for (&i, &v) in rows[..p].iter().zip(&vals[..p]) {
                    ws.x[i] -= v * xj;
                }
            }
            (Triangle::Upper, Err(p)) => {
                for (&i, &v) in rows[..p].iter().zip(&vals[..p]) {
                    ws.x[i] -= v * xj;
                }
            }
        }
    }
    // Gather the solution and reset the workspace.
    let mut pattern: Vec<usize> = ws.order.clone();
    pattern.sort_unstable();
    let mut values = Vec::with_capacity(pattern.len());
    let mut out_pattern = Vec::with_capacity(pattern.len());
    for &i in &pattern {
        let v = ws.x[i];
        if v != 0.0 {
            out_pattern.push(i);
            values.push(v);
        }
    }
    ws.clear();
    Ok((out_pattern, values))
}

impl SpSolveWorkspace {
    /// Resets marks and values for the positions touched by the last solve.
    fn clear(&mut self) {
        for &i in &self.order {
            self.marked[i] = false;
            self.x[i] = 0.0;
        }
        self.order.clear();
        self.dfs.clear();
    }
}

/// Materializes the inverse of a sparse triangular matrix by solving
/// against each identity column with [`spsolve`]. The result is CSC with
/// sorted row indices.
pub fn invert_triangular(g: &CscMatrix, triangle: Triangle, unit_diag: bool) -> Result<CscMatrix> {
    invert_triangular_with_limit(g, triangle, unit_diag, usize::MAX)
}

/// Like [`invert_triangular`] but aborts with [`Error::OutOfBudget`] as
/// soon as the accumulating inverse exceeds `max_nnz` stored entries.
/// Used by preprocessing methods that may fill in catastrophically (e.g.
/// whole-matrix LU inversion on web graphs) to reproduce the paper's
/// out-of-memory failures without exhausting the machine.
pub fn invert_triangular_with_limit(
    g: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    max_nnz: usize,
) -> Result<CscMatrix> {
    let n = g.ncols();
    if g.nrows() != n {
        return Err(Error::DimensionMismatch {
            op: "invert_triangular",
            lhs: (g.nrows(), g.ncols()),
            rhs: (n, n),
        });
    }
    let mut ws = SpSolveWorkspace::new(n);
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for j in 0..n {
        let (pattern, vals) = spsolve(g, triangle, &[j], &[1.0], unit_diag, &mut ws)?;
        indices.extend_from_slice(&pattern);
        values.extend_from_slice(&vals);
        indptr.push(indices.len());
        if indices.len() > max_nnz {
            return Err(Error::OutOfBudget {
                needed: crate::mem::sparse_bytes(n, indices.len()),
                budget: crate::mem::sparse_bytes(n, max_nnz),
            });
        }
    }
    Ok(CscMatrix::from_raw_unchecked(n, n, indptr, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::ops::spgemm;

    /// Lower triangular test matrix:
    /// [2 0 0]
    /// [1 3 0]
    /// [0 4 5]
    fn lower() -> CscMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 1, 4.0);
        coo.push(2, 2, 5.0);
        coo.to_csr().to_csc()
    }

    /// Upper triangular test matrix:
    /// [2 1 0]
    /// [0 3 4]
    /// [0 0 5]
    fn upper() -> CscMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 1, 3.0);
        coo.push(1, 2, 4.0);
        coo.push(2, 2, 5.0);
        coo.to_csr().to_csc()
    }

    #[test]
    fn dense_lower_solve() {
        let l = lower();
        let mut b = vec![2.0, 7.0, 17.0];
        solve_lower(&l, &mut b, false).unwrap();
        // x = [1, 2, 1.8]: check L x = original b.
        let back = l.matvec(&b).unwrap();
        assert!((back[0] - 2.0).abs() < 1e-12);
        assert!((back[1] - 7.0).abs() < 1e-12);
        assert!((back[2] - 17.0).abs() < 1e-12);
    }

    #[test]
    fn dense_upper_solve() {
        let u = upper();
        let mut b = vec![4.0, 10.0, 5.0];
        solve_upper(&u, &mut b).unwrap();
        let back = u.matvec(&b).unwrap();
        for (got, want) in back.iter().zip(&[4.0, 10.0, 5.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_diagonal_detected() {
        // Zero on the diagonal.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let l = coo.to_csr().to_csc();
        let mut b = vec![1.0, 1.0];
        assert!(matches!(solve_lower(&l, &mut b, false), Err(Error::SingularMatrix { at: 1 })));
    }

    #[test]
    fn spsolve_matches_dense_solve_lower() {
        let l = lower();
        let mut ws = SpSolveWorkspace::new(3);
        let (pat, vals) = spsolve(&l, Triangle::Lower, &[0], &[2.0], false, &mut ws).unwrap();
        let mut dense = [0.0; 3];
        for (&i, &v) in pat.iter().zip(&vals) {
            dense[i] = v;
        }
        let mut b = vec![2.0, 0.0, 0.0];
        solve_lower(&l, &mut b, false).unwrap();
        for i in 0..3 {
            assert!((dense[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn spsolve_upper_reaches_backwards() {
        let u = upper();
        let mut ws = SpSolveWorkspace::new(3);
        // RHS e_2 reaches rows 1 and 0 through the upper structure.
        let (pat, vals) = spsolve(&u, Triangle::Upper, &[2], &[5.0], false, &mut ws).unwrap();
        let mut dense = [0.0; 3];
        for (&i, &v) in pat.iter().zip(&vals) {
            dense[i] = v;
        }
        let mut b = vec![0.0, 0.0, 5.0];
        solve_upper(&u, &mut b).unwrap();
        for i in 0..3 {
            assert!((dense[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn spsolve_workspace_is_reusable() {
        let l = lower();
        let mut ws = SpSolveWorkspace::new(3);
        for j in 0..3 {
            let (pat, vals) = spsolve(&l, Triangle::Lower, &[j], &[1.0], false, &mut ws).unwrap();
            // Solution of L x = e_j has x[j] = 1 / L[j][j].
            let pos = pat.iter().position(|&i| i == j).unwrap();
            assert!((vals[pos] - 1.0 / l.get(j, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn invert_lower_gives_true_inverse() {
        let l = lower();
        let linv = invert_triangular(&l, Triangle::Lower, false).unwrap();
        let prod = spgemm(&l.to_csr(), &linv.to_csr()).unwrap();
        assert!(prod.approx_eq(&CsrMatrix::identity(3), 1e-12));
    }

    #[test]
    fn invert_upper_gives_true_inverse() {
        let u = upper();
        let uinv = invert_triangular(&u, Triangle::Upper, false).unwrap();
        let prod = spgemm(&uinv.to_csr(), &u.to_csr()).unwrap();
        assert!(prod.approx_eq(&CsrMatrix::identity(3), 1e-12));
    }

    #[test]
    fn unit_diag_lower_ignores_missing_diagonal() {
        // Strictly lower entries only; unit diagonal implied.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, 0.5);
        coo.push(2, 1, 0.25);
        let l = coo.to_csr().to_csc();
        let linv = invert_triangular(&l, Triangle::Lower, true).unwrap();
        // (I + N)^{-1} where N strictly lower nilpotent.
        assert!((linv.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((linv.get(1, 0) + 0.5).abs() < 1e-12);
        assert!((linv.get(2, 0) - 0.125).abs() < 1e-12);
        assert!((linv.get(2, 1) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = CscMatrix::identity(4);
        let inv = invert_triangular(&i, Triangle::Lower, false).unwrap();
        assert_eq!(inv.to_csr(), CsrMatrix::identity(4));
    }

    #[test]
    fn block_solves_bitwise_equal_vector_solves() {
        let l = lower();
        let u = upper();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..3).map(|i| ((i * 11 + j * 5) as f64).sin() * 9.3).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut b = DenseBlock::from_columns(3, &refs).unwrap();
        solve_lower_block(&l, &mut b, false).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let mut want = col.clone();
            solve_lower(&l, &mut want, false).unwrap();
            assert_eq!(b.col(j), &want[..], "lower column {j}");
        }
        let mut b = DenseBlock::from_columns(3, &refs).unwrap();
        solve_upper_block(&u, &mut b).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let mut want = col.clone();
            solve_upper(&u, &mut want).unwrap();
            assert_eq!(b.col(j), &want[..], "upper column {j}");
        }
        // Width-1 fallback.
        let mut one = DenseBlock::from_columns(3, &[cols[0].as_slice()]).unwrap();
        solve_lower_block(&l, &mut one, false).unwrap();
        let mut want = cols[0].clone();
        solve_lower(&l, &mut want, false).unwrap();
        assert_eq!(one.col(0), &want[..]);
    }

    #[test]
    fn block_solve_unit_diag_matches_vector_solve() {
        // Strictly lower entries only; unit diagonal implied, so the
        // diagonal lookup misses and the hoisted `Err` position is used.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, 0.5);
        coo.push(2, 1, 0.25);
        let l = coo.to_csr().to_csc();
        let cols = [[1.0, 2.0, 3.0], [0.0, -1.0, 4.0]];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut b = DenseBlock::from_columns(3, &refs).unwrap();
        solve_lower_block(&l, &mut b, true).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let mut want = col.to_vec();
            solve_lower(&l, &mut want, true).unwrap();
            assert_eq!(b.col(j), &want[..], "column {j}");
        }
    }

    #[test]
    fn block_solves_validate_shapes_and_singularity() {
        let l = lower();
        let mut wrong = DenseBlock::zeros(2, 3);
        assert!(solve_lower_block(&l, &mut wrong, false).is_err());
        assert!(solve_upper_block(&upper(), &mut wrong).is_err());
        // Zero diagonal detected at the same pivot as the vector solve.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let singular = coo.to_csr().to_csc();
        let mut b = DenseBlock::zeros(2, 3);
        assert!(matches!(
            solve_lower_block(&singular, &mut b, false),
            Err(Error::SingularMatrix { at: 1 })
        ));
    }
}
