//! Production workflow: persist the precomputed index to disk, reload it
//! in a "serving" process, and keep it fresh under edge insertions with
//! [`DynamicBear`] — the paper's stated future-work direction
//! (Section 6: "extending BEAR to support frequently changing graphs").
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use bear_core::{Bear, BearConfig, DynamicBear, RwrSolver, UpdateKind};
use bear_graph::generators::{hub_and_spoke, HubSpokeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let graph = hub_and_spoke(
        &HubSpokeConfig {
            num_hubs: 6,
            num_caves: 120,
            max_cave_size: 8,
            cave_density: 0.4,
            hub_links: 1,
            hub_density: 0.5,
        },
        &mut rng,
    );
    println!("graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // 1. Offline: preprocess once and persist the index.
    let index_path = std::env::temp_dir().join("example_incremental.bear");
    let bear = Bear::new(&graph, &BearConfig::exact(0.1)).expect("preprocessing");
    bear.save(&index_path).expect("save index");
    println!(
        "saved index: {} bytes of precomputed matrices -> {}",
        bear.memory_bytes(),
        index_path.display()
    );

    // 2. Online: a serving process loads the index and answers queries
    //    without redoing preprocessing.
    let served = Bear::load(&index_path).expect("load index");
    let before = served.query(42).expect("query");
    assert_eq!(before, bear.query(42).expect("query"));
    println!("reloaded index answers queries identically ✓");

    // 3. The graph changes: hub-incident insertions take the incremental
    //    path (Schur refresh only); spoke-incident ones rebuild.
    let mut dynamic = DynamicBear::new(&graph, &BearConfig::exact(0.1)).expect("dynamic");
    let hub = 0; // generator places hubs at the lowest ids
    let kind = dynamic.insert_edge(hub, 42, 1.0).expect("insert");
    println!("inserted hub edge ({hub} -> 42): {kind:?}");
    assert_eq!(kind, UpdateKind::IncrementalHub);

    let spoke = graph.num_nodes() - 1;
    let kind = dynamic.insert_edge(spoke, 42, 1.0).expect("insert");
    println!("inserted spoke edge ({spoke} -> 42): {kind:?}");
    assert_eq!(kind, UpdateKind::FullRebuild);

    // 4. The updated index agrees with from-scratch preprocessing of the
    //    updated graph.
    let updated_graph = dynamic.current_graph().expect("graph");
    let oracle = Bear::new(&updated_graph, &BearConfig::exact(0.1)).expect("oracle");
    let got = dynamic.query(42).expect("query");
    let want = oracle.query(42).expect("query");
    let max_diff = got.iter().zip(&want).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("updated index vs fresh preprocessing: max |Δscore| = {max_diff:.2e}");
    assert!(max_diff < 1e-9);
    println!("incrementally maintained index is exact ✓");

    // The seed's score changed because its neighborhood changed.
    let after = dynamic.query(42).expect("query");
    let shift = bear_core::metrics::l2_error(&before, &after);
    println!("score shift caused by the two insertions: L2 = {shift:.3e}");
    assert!(shift > 0.0);

    std::fs::remove_file(&index_path).ok();
}
