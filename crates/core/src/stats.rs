//! Accounting for the precomputed matrices (Tables 2 and 4 of the paper).

/// Nonzero counts and total bytes of BEAR's six precomputed matrices,
/// plus the structural statistics the paper reports per dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecomputedStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of spokes (`n₁`).
    pub n1: usize,
    /// Number of hubs (`n₂`).
    pub n2: usize,
    /// Number of diagonal blocks in `H₁₁` (`b`).
    pub num_blocks: usize,
    /// `Σᵢ n₁ᵢ²` (Table 4 column).
    pub sum_block_sq: u128,
    /// Nonzeros of `L₁⁻¹`.
    pub nnz_l1_inv: usize,
    /// Nonzeros of `U₁⁻¹`.
    pub nnz_u1_inv: usize,
    /// Nonzeros of `L₂⁻¹`.
    pub nnz_l2_inv: usize,
    /// Nonzeros of `U₂⁻¹`.
    pub nnz_u2_inv: usize,
    /// Nonzeros of `H₁₂`.
    pub nnz_h12: usize,
    /// Nonzeros of `H₂₁`.
    pub nnz_h21: usize,
    /// Total bytes of the six matrices in compressed sparse storage.
    pub bytes: usize,
}

impl PrecomputedStats {
    /// Total nonzeros across all six precomputed matrices (the paper's
    /// `#nz` in Figure 2).
    pub fn total_nnz(&self) -> usize {
        self.nnz_l1_inv
            + self.nnz_u1_inv
            + self.nnz_l2_inv
            + self.nnz_u2_inv
            + self.nnz_h12
            + self.nnz_h21
    }

    /// `|L₁⁻¹| + |U₁⁻¹|` (Table 4 column).
    pub fn nnz_spoke_factors(&self) -> usize {
        self.nnz_l1_inv + self.nnz_u1_inv
    }

    /// `|L₂⁻¹| + |U₂⁻¹|` (Table 4 column).
    pub fn nnz_hub_factors(&self) -> usize {
        self.nnz_l2_inv + self.nnz_u2_inv
    }

    /// `|H₁₂| + |H₂₁|` (Table 4 column).
    pub fn nnz_cross(&self) -> usize {
        self.nnz_h12 + self.nnz_h21
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_add_up() {
        let s = PrecomputedStats {
            n: 10,
            n1: 8,
            n2: 2,
            num_blocks: 3,
            sum_block_sq: 24,
            nnz_l1_inv: 1,
            nnz_u1_inv: 2,
            nnz_l2_inv: 3,
            nnz_u2_inv: 4,
            nnz_h12: 5,
            nnz_h21: 6,
            bytes: 100,
        };
        assert_eq!(s.total_nnz(), 21);
        assert_eq!(s.nnz_spoke_factors(), 3);
        assert_eq!(s.nnz_hub_factors(), 7);
        assert_eq!(s.nnz_cross(), 11);
    }
}
