//! Explicit hub-and-spoke synthesizer.
//!
//! Builds graphs with a controllable SlashBurn profile: `num_hubs` densely
//! interconnected hubs, plus many small "cave" components whose nodes
//! attach to a few random hubs. This directly controls the structural
//! quantities BEAR's complexity depends on (`n₂`, block-size profile),
//! which is what the dataset stand-ins need to match per Table 4.

use crate::graph::Graph;
use rand::Rng;

/// Configuration for the hub-and-spoke synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct HubSpokeConfig {
    /// Number of hub nodes.
    pub num_hubs: usize,
    /// Number of cave (spoke) components.
    pub num_caves: usize,
    /// Maximum nodes per cave (sizes are sampled uniformly in
    /// `1..=max_cave_size`).
    pub max_cave_size: usize,
    /// Probability of an edge between each pair of nodes within a cave.
    pub cave_density: f64,
    /// Number of hub attachments per cave node.
    pub hub_links: usize,
    /// Probability of an edge between each ordered pair of hubs.
    pub hub_density: f64,
}

/// Generates a hub-and-spoke graph; node ids: hubs first (`0..num_hubs`),
/// then cave nodes.
pub fn hub_and_spoke<R: Rng>(config: &HubSpokeConfig, rng: &mut R) -> Graph {
    let h = config.num_hubs.max(1);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Hub core.
    for a in 0..h {
        for b in 0..h {
            if a != b && rng.gen_bool(config.hub_density.clamp(0.0, 1.0)) {
                edges.push((a, b));
            }
        }
    }
    let mut next = h;
    for _ in 0..config.num_caves {
        let size = rng.gen_range(1..=config.max_cave_size.max(1));
        let members: Vec<usize> = (next..next + size).collect();
        next += size;
        // Intra-cave edges: a spanning path for connectivity plus random
        // density.
        for w in members.windows(2) {
            edges.push((w[0], w[1]));
            edges.push((w[1], w[0]));
        }
        for &a in &members {
            for &b in &members {
                if a < b && rng.gen_bool(config.cave_density.clamp(0.0, 1.0)) {
                    edges.push((a, b));
                    edges.push((b, a));
                }
            }
        }
        // Hub attachments (both directions so hubs see the caves too).
        for &a in &members {
            for _ in 0..config.hub_links.max(1) {
                let hub = rng.gen_range(0..h);
                edges.push((a, hub));
                edges.push((hub, a));
            }
        }
    }
    Graph::from_edges(next, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slashburn::{slashburn, SlashBurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> HubSpokeConfig {
        HubSpokeConfig {
            num_hubs: 5,
            num_caves: 40,
            max_cave_size: 6,
            cave_density: 0.3,
            hub_links: 1,
            hub_density: 0.5,
        }
    }

    #[test]
    fn generates_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = hub_and_spoke(&config(), &mut rng);
        assert!(g.num_nodes() > 40);
        assert!(g.num_edges() > 80);
    }

    #[test]
    fn slashburn_recovers_small_hub_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = hub_and_spoke(&config(), &mut rng);
        let ord = slashburn(&g, &SlashBurnConfig::with_k(2)).unwrap();
        // Removing the 5 planted hubs should shatter the graph, so the hub
        // region stays small relative to n.
        assert!(ord.n_hubs <= 12, "hub region too large: {} of {}", ord.n_hubs, g.num_nodes());
        assert!(ord.block_sizes.iter().all(|&b| b <= 6));
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = hub_and_spoke(&config(), &mut StdRng::seed_from_u64(7));
        let g2 = hub_and_spoke(&config(), &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }
}
