//! End-to-end HTTP integration tests: save→load→serve round trip
//! (bit-identical to in-memory answers), fault-to-status mapping, and
//! zero-downtime hot swap under concurrent load.

use bear_core::{Bear, BearConfig, EngineConfig, QueryEngine};
use bear_graph::Graph;
use bear_serve::{client, Registry, Server, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A star graph with a chord: small enough for instant preprocessing,
/// structured enough (hub + caves) that SlashBurn produces a real
/// partition.
fn test_graph() -> Graph {
    let mut edges = Vec::new();
    for v in 1..12 {
        edges.push((0, v));
        edges.push((v, 0));
    }
    edges.push((5, 6));
    edges.push((6, 5));
    Graph::from_edges(12, &edges).unwrap()
}

fn engine_config() -> EngineConfig {
    EngineConfig::builder().threads(2).queue_capacity(64).build().unwrap()
}

/// Preprocesses the test graph, saves it, reloads it through the
/// persistence path, and serves the *reloaded* index — so every HTTP
/// assertion below also exercises save→load fidelity.
fn test_server(tag: &str) -> (ServerHandle, Bear, PathBuf) {
    let reference = Bear::new(&test_graph(), &BearConfig::exact(0.15)).unwrap();
    let path = std::env::temp_dir().join(format!("bear_serve_{tag}.idx"));
    reference.save(&path).unwrap();
    let loaded = Arc::new(Bear::load(&path).unwrap());
    let engine = QueryEngine::new(loaded, engine_config()).unwrap();
    let registry = Arc::new(Registry::new());
    registry.publish("g", Arc::new(engine));
    let config =
        ServerConfig { http_threads: 4, engine_config: engine_config(), ..ServerConfig::default() };
    let handle = Server::start(registry, config).unwrap();
    (handle, reference, path)
}

#[test]
fn healthz_routes_and_method_mapping() {
    let (server, _, path) = test_server("health");
    let addr = server.addr();

    let resp = client::get(addr, "/healthz", &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("ok 1 graph(s)"));

    let resp = client::get(addr, "/nope", &[]).unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body_str().contains("not_found"));

    let resp = client::post(addr, "/v1/query?seed=0", &[]).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));

    let resp = client::get(addr, "/admin/load?graph=g&index=x", &[]).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// The tentpole differential: every score served over HTTP from the
/// *reloaded* index is bit-identical to the in-memory `Bear::query`
/// answer on the original — persistence and the whole HTTP layer add
/// exactly zero numerical perturbation.
#[test]
fn save_load_serve_round_trip_is_bit_identical() {
    let (server, reference, path) = test_server("roundtrip");
    let addr = server.addr();
    let n = reference.num_nodes();
    for seed in 0..n {
        let resp = client::get(addr, &format!("/v1/query?graph=g&seed={seed}"), &[]).unwrap();
        assert_eq!(resp.status, 200, "seed {seed}: {}", resp.body_str());
        assert_eq!(resp.header("x-graph-version"), Some("1"));
        assert_eq!(resp.header("x-degraded"), None, "exact index must not degrade");
        let body = resp.body_str();
        let scores = client::json_number_array(&body, "scores").expect("scores array");
        let expected = reference.query(seed).unwrap();
        assert_eq!(scores.len(), expected.len());
        for (i, (got, want)) in scores.iter().zip(&expected).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "seed {seed} node {i}: {got:?} != {want:?}");
        }
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn topk_and_batch_match_in_memory_answers() {
    let (server, reference, path) = test_server("topk_batch");
    let addr = server.addr();

    let expected = reference.query(3).unwrap();
    let ranked = bear_core::topk::top_k_excluding_seed(&expected, 3, 4);
    let resp = client::get(addr, "/v1/topk?graph=g&seed=3&k=4", &[]).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    for s in &ranked {
        let needle = format!("{{\"node\":{},\"score\":{}}}", s.node, s.score);
        assert!(body.contains(&needle), "missing {needle} in {body}");
    }

    let resp = client::get(addr, "/v1/batch?graph=g&seeds=0,5,0,11", &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-degraded-count"), Some("0"));
    let body = resp.body_str();
    for seed in [0usize, 5, 11] {
        let expected = reference.query(seed).unwrap();
        let mut serialized = format!("{{\"seed\":{seed},\"scores\":[");
        for (i, v) in expected.iter().enumerate() {
            if i > 0 {
                serialized.push(',');
            }
            serialized.push_str(&format!("{v}"));
        }
        serialized.push_str("]}");
        assert!(body.contains(&serialized), "seed {seed} payload mismatch in {body}");
    }

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Satellite regression over HTTP: an already-expired deadline budget
/// (`X-Deadline-Ms: 0`) fails fast at admission with the typed timeout
/// → `504`, never `429`, and is counted by the engine's metrics.
#[test]
fn expired_deadline_maps_to_504() {
    let (server, _, path) = test_server("deadline");
    let addr = server.addr();

    let resp = client::get(addr, "/v1/query?graph=g&seed=1", &[("X-Deadline-Ms", "0")]).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    assert!(resp.body_str().contains("timeout"));
    assert_eq!(resp.header("x-graph-version"), Some("1"));

    let resp = client::get(addr, "/v1/topk?graph=g&seed=1&k=3", &[("X-Deadline-Ms", "0")]).unwrap();
    assert_eq!(resp.status, 504);
    let resp = client::get(addr, "/v1/batch?graph=g&seeds=1,2", &[("X-Deadline-Ms", "0")]).unwrap();
    assert_eq!(resp.status, 504);

    let metrics = client::get(addr, "/metrics", &[]).unwrap().body_str();
    let timeouts = metrics
        .lines()
        .find(|l| l.starts_with("bear_timeouts_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert!(timeouts >= 3, "expired deadlines must be counted: {timeouts}");
    assert!(metrics.contains("bear_http_responses_504_total 3"), "{metrics}");
    // Fail-fast means admission never enqueued them: no queue shed.
    assert!(metrics.contains("bear_queue_rejections_total{graph=\"g\"} 0"), "{metrics}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_parameters_map_to_400_and_unknown_graph_to_404() {
    let (server, _, path) = test_server("badparams");
    let addr = server.addr();

    for target in [
        "/v1/query?graph=g",             // missing seed
        "/v1/query?graph=g&seed=banana", // malformed seed
        "/v1/query?graph=g&seed=99999",  // out-of-bounds seed
        "/v1/batch?graph=g",             // missing seeds
        "/v1/batch?graph=g&seeds=1,x",   // malformed seed list
        "/v1/topk?graph=g&seed=1&k=-3",  // malformed k
        "/v1/topk?graph=g&seed=1&k=0",   // k = 0 used to return an empty 200
    ] {
        let resp = client::get(addr, target, &[]).unwrap();
        assert_eq!(resp.status, 400, "{target}: {}", resp.body_str());
    }
    let resp = client::get(addr, "/v1/query?graph=g&seed=1", &[("X-Deadline-Ms", "soon")]).unwrap();
    assert_eq!(resp.status, 400);

    let resp = client::get(addr, "/v1/query?graph=missing&seed=1", &[]).unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body_str().contains("unknown graph"));

    // Single registered graph: the parameter may be omitted.
    let resp = client::get(addr, "/v1/query?seed=1", &[]).unwrap();
    assert_eq!(resp.status, 200);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Satellite regression: the top-k cache keeps the largest-k answer per
/// seed and serves any smaller k' from it by prefix truncation — so a
/// `k=8` request followed by `k=3` for the same seed is a cache hit
/// whose payload is the exact 3-prefix of the `k=8` ranking.
#[test]
fn topk_smaller_k_is_served_from_cache_prefix() {
    let (server, _, path) = test_server("topk_prefix");
    let addr = server.addr();

    let big = client::get(addr, "/v1/topk?graph=g&seed=3&k=8", &[]).unwrap();
    assert_eq!(big.status, 200, "{}", big.body_str());
    let hits_after_big = scrape_cache_hits(addr);

    let small = client::get(addr, "/v1/topk?graph=g&seed=3&k=3", &[]).unwrap();
    assert_eq!(small.status, 200, "{}", small.body_str());
    assert_eq!(
        scrape_cache_hits(addr),
        hits_after_big + 1,
        "k' <= cached k must be a cache hit"
    );

    // The k=3 payload is the exact character-level prefix of the k=8
    // node list (same nodes, same order, same shortest-round-trip f64s).
    let prefix_of = |body: &str| -> String {
        let start = body.find("\"nodes\":[").expect("nodes array") + "\"nodes\":[".len();
        let mut depth = 0usize;
        let mut objects = 0usize;
        let mut end = start;
        for (i, ch) in body[start..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        objects += 1;
                        if objects == 3 {
                            end = start + i + 1;
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        body[start..end].to_string()
    };
    assert_eq!(prefix_of(&small.body_str()), prefix_of(&big.body_str()));

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

fn scrape_cache_hits(addr: std::net::SocketAddr) -> u64 {
    let metrics = client::get(addr, "/metrics", &[]).unwrap().body_str();
    metrics
        .lines()
        .find(|l| l.starts_with("bear_cache_hits_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("cache hits metric present")
}

#[test]
fn admin_load_rejects_bad_index_and_keeps_serving() {
    let (server, _, path) = test_server("badload");
    let addr = server.addr();

    let resp = client::post(addr, "/admin/load?graph=g&index=/nonexistent/x.idx", &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());

    // A corrupt index is rejected typed and the old version keeps serving.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    let bad = std::env::temp_dir().join("bear_serve_badload_corrupt.idx");
    std::fs::write(&bad, &bytes).unwrap();
    let resp =
        client::post(addr, &format!("/admin/load?graph=g&index={}", bad.display()), &[]).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body_str());

    let resp = client::get(addr, "/v1/query?graph=g&seed=1", &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-graph-version"), Some("1"), "failed publish must not bump");

    server.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&bad).ok();
}

/// The hot-swap guarantee under concurrent load: while two new index
/// versions are published through `/admin/load`, every request from
/// every client thread succeeds with bit-identical scores — zero
/// dropped or incorrect responses — and each connection observes a
/// nondecreasing version sequence.
#[test]
fn hot_swap_under_load_drops_nothing() {
    let (server, reference, path) = test_server("hotswap");
    let addr = server.addr();
    let expected: Vec<Vec<f64>> =
        (0..reference.num_nodes()).map(|s| reference.query(s).unwrap()).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut versions = Vec::new();
                let mut requests = 0u64;
                let n = expected.len();
                while !stop.load(Ordering::Relaxed) {
                    let seed = (requests as usize * 7 + t) % n;
                    let resp = client::get(addr, &format!("/v1/query?graph=g&seed={seed}"), &[])
                        .expect("request must not fail mid-swap");
                    assert_eq!(resp.status, 200, "mid-swap failure: {}", resp.body_str());
                    let version: u64 = resp.header("x-graph-version").unwrap().parse().unwrap();
                    versions.push(version);
                    let scores = client::json_number_array(&resp.body_str(), "scores").unwrap();
                    for (got, want) in scores.iter().zip(&expected[seed]) {
                        assert_eq!(got.to_bits(), want.to_bits(), "mid-swap corruption");
                    }
                    requests += 1;
                }
                (requests, versions)
            })
        })
        .collect();

    // Publish two fresh versions of the same index while traffic flows.
    for round in 0..2 {
        std::thread::sleep(std::time::Duration::from_millis(150));
        let resp =
            client::post(addr, &format!("/admin/load?graph=g&index={}", path.display()), &[])
                .unwrap();
        assert_eq!(resp.status, 200, "publish {round}: {}", resp.body_str());
    }
    std::thread::sleep(std::time::Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    let mut max_version = 0;
    for c in clients {
        let (requests, versions) = c.join().unwrap();
        total += requests;
        assert!(
            versions.windows(2).all(|w| w[0] <= w[1]),
            "versions must be nondecreasing per connection: {versions:?}"
        );
        max_version = max_version.max(versions.last().copied().unwrap_or(0));
    }
    assert!(total > 0, "load threads must have issued traffic");
    assert_eq!(max_version, 3, "both publishes must have become visible");

    let metrics = client::get(addr, "/metrics", &[]).unwrap().body_str();
    assert!(metrics.contains("bear_hot_swaps_total 2"), "{metrics}");
    assert!(metrics.contains("bear_graph_version{graph=\"g\"} 3"), "{metrics}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
