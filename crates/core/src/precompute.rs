//! BEAR preprocessing (Algorithm 1 of the paper).
//!
//! Steps, matching the paper's line numbers:
//! 1. build `H = I − (1−c) Ãᵀ`;
//! 2. run SlashBurn to split nodes into spokes and hubs;
//! 3. reorder `H` so spoke components form the block-diagonal `H₁₁`
//!    (nodes inside each block ascending by degree);
//! 4. partition `H` into `H₁₁, H₁₂, H₂₁, H₂₂`;
//! 5. LU-decompose `H₁₁` block by block and invert the factors
//!    (`L₁⁻¹`, `U₁⁻¹`);
//! 6. compute the Schur complement `S = H₂₂ − H₂₁ (U₁⁻¹ (L₁⁻¹ H₁₂))`;
//! 7. reorder the hubs ascending by degree within `S`;
//! 8. LU-decompose `S` and invert the factors (`L₂⁻¹`, `U₂⁻¹`);
//! 9. (BEAR-Approx) drop entries below the drop tolerance `ξ` from all
//!    six precomputed matrices.

use crate::paging::{Factor, FactorPair, SpokeFactors};
use crate::persist::{ResidentParts, V3StreamWriter};
use crate::rwr::{build_h, RwrConfig};
use crate::stats::{PrecomputedStats, StageTimings};
use bear_graph::{slashburn, Graph, SlashBurnConfig};
use bear_sparse::mem::{MemBudget, MemoryUsage};
use bear_sparse::parallel::{par_invert_triangular, par_spgemm};
use bear_sparse::sparsify::{drop_tolerance_csc, par_drop_tolerance_csc, par_drop_tolerance_csr};
use bear_sparse::triangular::Triangle;
use bear_sparse::{ops, BlockDiagLu, CscMatrix, CsrMatrix, Error, Permutation, Result, SparseLu};
use std::path::Path;
use std::time::Instant;

/// Configuration for BEAR preprocessing.
#[derive(Debug, Clone, Copy)]
pub struct BearConfig {
    /// Restart probability and adjacency normalization.
    pub rwr: RwrConfig,
    /// Drop tolerance `ξ`. `0.0` gives BEAR-Exact; `> 0` gives
    /// BEAR-Approx (Algorithm 1 line 9).
    pub drop_tolerance: f64,
    /// SlashBurn hubs-per-iteration. `None` uses the paper's default
    /// `k = max(1, ⌈0.001 n⌉)`.
    pub slashburn_k: Option<usize>,
    /// Memory budget charged by the precomputed matrices; exceeding it
    /// aborts preprocessing with `Error::OutOfBudget`.
    pub budget: MemBudget,
    /// Reorder hubs ascending by degree within `S` before factoring it
    /// (Algorithm 1 line 7). Disable only for ablation experiments.
    pub reorder_hubs: bool,
    /// Sort spoke-block nodes ascending by within-component degree
    /// (Observation 1). Disable only for ablation experiments.
    pub sort_blocks_by_degree: bool,
    /// Worker threads for the parallelizable preprocessing kernels
    /// (block-diagonal LU, factor inversion, Schur-complement SpGEMM,
    /// and drop-tolerance sparsification). `1` runs the serial kernels;
    /// `0` means "all cores". Results are **bit-identical** for every
    /// thread count: every parallel kernel stitches per-chunk output
    /// back in input order.
    pub threads: usize,
}

impl Default for BearConfig {
    fn default() -> Self {
        BearConfig {
            rwr: RwrConfig::default(),
            drop_tolerance: 0.0,
            slashburn_k: None,
            budget: MemBudget::unlimited(),
            reorder_hubs: true,
            sort_blocks_by_degree: true,
            threads: 1,
        }
    }
}

impl BearConfig {
    /// BEAR-Exact with the given restart probability.
    pub fn exact(c: f64) -> Self {
        BearConfig { rwr: RwrConfig { c, ..RwrConfig::default() }, ..BearConfig::default() }
    }

    /// BEAR-Approx with the given restart probability and drop tolerance.
    pub fn approx(c: f64, xi: f64) -> Self {
        BearConfig { drop_tolerance: xi, ..BearConfig::exact(c) }
    }

    /// Validates the whole configuration at the preprocessing boundary.
    ///
    /// Beyond the restart-probability range check, this rejects a NaN,
    /// infinite, or negative drop tolerance `ξ`: a NaN used to slip
    /// through to the sparsifier where `v.abs() >= NaN` is false for
    /// every entry, silently emptying all six precomputed matrices.
    pub fn validate(&self) -> Result<()> {
        self.rwr.validate()?;
        if !self.drop_tolerance.is_finite() || self.drop_tolerance < 0.0 {
            return Err(Error::InvalidConfig {
                param: "drop_tolerance",
                reason: format!(
                    "xi = {} must be finite and >= 0 (0 disables sparsification)",
                    self.drop_tolerance
                ),
            });
        }
        Ok(())
    }

    /// Resolves [`BearConfig::threads`] to a concrete worker count:
    /// `0` maps to all available cores, anything else is taken as-is.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Intermediate preprocessing state shared by [`Bear`] and the
/// iterative-hub variant: everything up to (and including) the Schur
/// complement, before `S` is factored.
#[derive(Debug, Clone)]
pub(crate) struct PreprocessParts {
    pub(crate) l1_inv: CscMatrix,
    pub(crate) u1_inv: CscMatrix,
    pub(crate) h12: CsrMatrix,
    pub(crate) h21: CsrMatrix,
    pub(crate) s: CsrMatrix,
    pub(crate) perm: Permutation,
    pub(crate) n1: usize,
    pub(crate) n2: usize,
    pub(crate) block_sizes: Vec<usize>,
    pub(crate) degrees: Vec<usize>,
    /// Stage timings for lines 1–7; the Schur-side stages are filled in
    /// by [`Bear::new`].
    pub(crate) timings: StageTimings,
}

/// Runs Algorithm 1 lines 1–7: build `H`, SlashBurn-reorder, partition,
/// block-factor `H₁₁` and invert its factors, form the Schur complement,
/// and reorder the hubs. Stops before factoring `S`.
///
/// All heavy kernels run on `config.effective_threads()` workers; the
/// output is bit-identical for every thread count.
pub(crate) fn preprocess_to_schur(g: &Graph, config: &BearConfig) -> Result<PreprocessParts> {
    config.validate()?;
    let n = g.num_nodes();
    let threads = config.effective_threads();
    let mut timings = StageTimings::default();

    // Line 1: H = I − (1−c) Ãᵀ.
    let stage = Instant::now();
    let h = build_h(g, &config.rwr)?;
    timings.build_h = stage.elapsed();

    // Lines 2–3: SlashBurn ordering.
    let stage = Instant::now();
    let mut sb_config = match config.slashburn_k {
        Some(k) => SlashBurnConfig::with_k(k),
        None => SlashBurnConfig::paper_default(n),
    };
    sb_config.sort_blocks_by_degree = config.sort_blocks_by_degree;
    let ordering = slashburn(g, &sb_config)?;
    let (n1, n2) = (ordering.n_spokes, ordering.n_hubs);
    let h = ordering.perm.permute_symmetric(&h)?;
    timings.slashburn = stage.elapsed();

    // Line 4: partition.
    let stage = Instant::now();
    let h11 = h.submatrix(0, n1, 0, n1)?;
    let mut h12 = h.submatrix(0, n1, n1, n)?;
    let mut h21 = h.submatrix(n1, n, 0, n1)?;
    let h22 = h.submatrix(n1, n, n1, n)?;
    config.budget.check(h12.memory_bytes() + h21.memory_bytes())?;
    timings.partition = stage.elapsed();

    // Line 5: block-diagonal LU of H₁₁ and inverted factors, with the
    // independent blocks scheduled across the workers (cost-balanced by
    // Σ block_size², largest blocks first).
    let stage = Instant::now();
    let block_lu = BlockDiagLu::par_factor(&h11.to_csc(), &ordering.block_sizes, threads)?;
    timings.factor_h11 = stage.elapsed();
    let stage = Instant::now();
    let (l1_inv, u1_inv) = block_lu.par_invert_factors(threads)?;
    config.budget.check(
        h12.memory_bytes() + h21.memory_bytes() + l1_inv.memory_bytes() + u1_inv.memory_bytes(),
    )?;
    timings.invert_h11 = stage.elapsed();

    // Line 6: Schur complement S = H₂₂ − H₂₁ U₁⁻¹ L₁⁻¹ H₁₂; the three
    // SpGEMMs split row ranges across workers (par_spgemm delegates to
    // the serial kernel for one thread or tiny inputs).
    let stage = Instant::now();
    let r1 = par_spgemm(&l1_inv.to_csr(), &h12, threads)?;
    let r2 = par_spgemm(&u1_inv.to_csr(), &r1, threads)?;
    let r3 = par_spgemm(&h21, &r2, threads)?;
    let mut s = ops::sub(&h22, &r3)?;

    // Line 7: reorder hubs ascending by degree within S.
    let hub_perm =
        if config.reorder_hubs { hub_degree_ordering(&s) } else { Permutation::identity(n2) };
    s = hub_perm.permute_symmetric(&s)?;
    h12 = hub_perm.permute_cols(&h12)?;
    h21 = hub_perm.permute_rows(&h21)?;
    timings.schur = stage.elapsed();

    // Full ordering = hub reorder on top of the SlashBurn ordering.
    let mut full_forward: Vec<usize> = (0..n).collect();
    for new_hub in 0..n2 {
        full_forward[n1 + new_hub] = n1 + hub_perm.old_of(new_hub);
    }
    let hub_lift = Permutation::from_new_to_old(full_forward)?;
    let perm = hub_lift.compose(&ordering.perm)?;

    Ok(PreprocessParts {
        l1_inv,
        u1_inv,
        h12,
        h21,
        s,
        perm,
        n1,
        n2,
        block_sizes: ordering.block_sizes,
        degrees: g.undirected_degrees(),
        timings,
    })
}

/// Persistent per-row Gustavson accumulators for the streamed Schur
/// complement: `r3 = H₂₁ · (U₁⁻¹ L₁⁻¹ H₁₂)` is assembled one spoke
/// block at a time while only that block's factors are in memory.
///
/// The global kernel ([`ops::spgemm`]) scatters, for each output row
/// `i`, the rows of `B` referenced by `H₂₁`'s row `i` in ascending
/// column order. Per-row state (accumulator, first-touch marks, touched
/// list, and a cursor into `H₂₁`'s row that advances monotonically
/// through the block ranges) replays exactly that (i, k) visitation
/// order across block boundaries, so the gathered matrix is
/// bit-identical to the one-shot product.
struct SchurAccumulator {
    n2: usize,
    /// Row-major `n2 × n2` dense accumulators.
    acc: Vec<f64>,
    mark: Vec<bool>,
    /// Per row, touched columns in first-touch order.
    touched: Vec<Vec<usize>>,
    /// Per row, position within `H₂₁.row(i)` of the next unseen entry.
    cursor: Vec<usize>,
}

impl SchurAccumulator {
    fn new(n2: usize) -> Self {
        SchurAccumulator {
            n2,
            acc: vec![0.0; n2 * n2],
            mark: vec![false; n2 * n2],
            touched: vec![Vec::new(); n2],
            cursor: vec![0; n2],
        }
    }

    /// Folds in block `[bs, be)`: `r2b` holds the rows `[bs, be)` of
    /// `U₁⁻¹ L₁⁻¹ H₁₂` (block-local row indices).
    fn scatter_block(&mut self, h21: &CsrMatrix, bs: usize, be: usize, r2b: &CsrMatrix) -> Result<()> {
        for i in 0..self.n2 {
            let (cols, vals) = h21.row(i);
            let base = i * self.n2;
            let cur = &mut self.cursor[i];
            while *cur < cols.len() && cols[*cur] < be {
                let k = cols[*cur];
                let aik = vals[*cur];
                *cur += 1;
                let kk = k.checked_sub(bs).ok_or_else(|| {
                    Error::InvalidStructure(format!(
                        "H21 column {k} revisited below block start {bs}"
                    ))
                })?;
                let (b_cols, b_vals) = r2b.row(kk);
                for (&j, &bkj) in b_cols.iter().zip(b_vals) {
                    if !self.mark[base + j] {
                        self.mark[base + j] = true;
                        self.touched[i].push(j);
                        self.acc[base + j] = aik * bkj;
                    } else {
                        self.acc[base + j] += aik * bkj;
                    }
                }
            }
        }
        Ok(())
    }

    /// Gathers the accumulated product, replicating the global kernel's
    /// per-row epilogue: sort the touched columns, skip exact zeros.
    fn finish(mut self) -> CsrMatrix {
        let n2 = self.n2;
        let mut indptr = Vec::with_capacity(n2 + 1);
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        indptr.push(0);
        for i in 0..n2 {
            self.touched[i].sort_unstable();
            let base = i * n2;
            for &j in &self.touched[i] {
                let v = self.acc[base + j];
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        // lint:allow(L3, mirrors the in-crate spgemm epilogue for byte-identity; indices sorted and deduped by construction above)
        CsrMatrix::from_raw_unchecked(n2, n2, indptr, indices, values)
    }
}

/// Runs Algorithm 1 and streams the result straight to a v3 on-disk
/// index at `path`, never holding more than one spoke block's inverted
/// factors in memory: peak preprocessing RSS is bounded by the graph,
/// the hub-side matrices, and the largest single block — independent of
/// the total index size.
///
/// The output is byte-for-byte identical to
/// `Bear::new(g, config)?.save_v3(path)`: per-block factorization and
/// inversion follow the exact code path of [`BlockDiagLu::factor`], the
/// Schur complement is accumulated in the global kernel's visitation
/// order (see [`SchurAccumulator`]), and the drop tolerance filters per
/// entry so filtering each block equals slicing the filtered whole.
///
/// `config.budget` bounds the *resident working set* (hub matrices plus
/// one block), not the total index written — that is the point of the
/// streamed path. `config.threads` parallelizes only the hub-side
/// kernels; the per-block pipeline is sequential so at most one block
/// is alive at a time.
pub fn preprocess_to_disk(g: &Graph, config: &BearConfig, path: &Path) -> Result<()> {
    config.validate()?;
    let n = g.num_nodes();
    let threads = config.effective_threads();
    let xi = config.drop_tolerance;

    // Lines 1–4: same front as `preprocess_to_schur`.
    let h = build_h(g, &config.rwr)?;
    let mut sb_config = match config.slashburn_k {
        Some(k) => SlashBurnConfig::with_k(k),
        None => SlashBurnConfig::paper_default(n),
    };
    sb_config.sort_blocks_by_degree = config.sort_blocks_by_degree;
    let ordering = slashburn(g, &sb_config)?;
    let (n1, n2) = (ordering.n_spokes, ordering.n_hubs);
    let h = ordering.perm.permute_symmetric(&h)?;
    let h11 = h.submatrix(0, n1, 0, n1)?;
    let mut h12 = h.submatrix(0, n1, n1, n)?;
    let mut h21 = h.submatrix(n1, n, 0, n1)?;
    let h22 = h.submatrix(n1, n, n1, n)?;
    drop(h);
    config.budget.check(h12.memory_bytes() + h21.memory_bytes())?;

    // Same block-layout validation as `BlockDiagLu::factor`: an entry
    // outside the claimed diagonal blocks would be silently dropped by
    // the per-block submatrix slicing and corrupt the factors.
    let total: usize = ordering.block_sizes.iter().sum();
    if total != n1 {
        return Err(Error::InvalidStructure(format!(
            "block sizes sum to {total}, expected {n1}"
        )));
    }
    let mut block_of = vec![0usize; n1];
    let mut off = 0usize;
    for (bid, &sz) in ordering.block_sizes.iter().enumerate() {
        block_of[off..off + sz].fill(bid);
        off += sz;
    }
    for (r, c, _) in h11.iter() {
        if block_of[r] != block_of[c] {
            return Err(Error::InvalidStructure(format!("entry ({r}, {c}) crosses block boundary")));
        }
    }

    // Lines 5–6, fused per block: factor, invert, fold the block's Schur
    // contribution (undropped factors — `Bear::new` sparsifies only
    // after the Schur complement is formed), sparsify, stream the
    // segment out, free the block.
    let mut writer = V3StreamWriter::create(path)?;
    let mut schur = SchurAccumulator::new(n2);
    let mut off = 0usize;
    for &sz in &ordering.block_sizes {
        let sub = h11.submatrix(off, off + sz, off, off + sz)?;
        let lu = SparseLu::factor(&sub.to_csc())?;
        let (l1b, u1b) = lu.invert_factors()?;
        let h12b = h12.submatrix(off, off + sz, 0, n2)?;
        let r1b = ops::spgemm(&l1b.to_csr(), &h12b)?;
        let r2b = ops::spgemm(&u1b.to_csr(), &r1b)?;
        schur.scatter_block(&h21, off, off + sz, &r2b)?;
        let (l1b, u1b) =
            if xi > 0.0 { (drop_tolerance_csc(&l1b, xi), drop_tolerance_csc(&u1b, xi)) } else { (l1b, u1b) };
        config.budget.check(
            h12.memory_bytes()
                + h21.memory_bytes()
                + l1b.memory_bytes()
                + u1b.memory_bytes(),
        )?;
        writer.write_segment(&FactorPair::new(l1b, u1b)?)?;
        off += sz;
    }
    let r3 = schur.finish();
    let mut s = ops::sub(&h22, &r3)?;

    // Line 7: reorder hubs ascending by degree within S.
    let hub_perm =
        if config.reorder_hubs { hub_degree_ordering(&s) } else { Permutation::identity(n2) };
    s = hub_perm.permute_symmetric(&s)?;
    h12 = hub_perm.permute_cols(&h12)?;
    h21 = hub_perm.permute_rows(&h21)?;
    let mut full_forward: Vec<usize> = (0..n).collect();
    for new_hub in 0..n2 {
        full_forward[n1 + new_hub] = n1 + hub_perm.old_of(new_hub);
    }
    let hub_lift = Permutation::from_new_to_old(full_forward)?;
    let perm = hub_lift.compose(&ordering.perm)?;

    // Line 8: LU of S and inverted factors.
    let s_lu = SparseLu::factor(&s.to_csc())?;
    let l2_inv = par_invert_triangular(s_lu.l(), Triangle::Lower, true, threads)?;
    let u2_inv = par_invert_triangular(s_lu.u(), Triangle::Upper, false, threads)?;

    // Line 9 for the resident matrices (the segments are already
    // sparsified per block above).
    let (l2_inv, u2_inv, h12, h21) = if xi > 0.0 {
        (
            par_drop_tolerance_csc(&l2_inv, xi, threads)?,
            par_drop_tolerance_csc(&u2_inv, xi, threads)?,
            par_drop_tolerance_csr(&h12, xi, threads)?,
            par_drop_tolerance_csr(&h21, xi, threads)?,
        )
    } else {
        (l2_inv, u2_inv, h12, h21)
    };
    config.budget.check(
        l2_inv.memory_bytes() + u2_inv.memory_bytes() + h12.memory_bytes() + h21.memory_bytes(),
    )?;

    let degrees = g.undirected_degrees();
    writer.finish(&ResidentParts {
        n1,
        n2,
        c: config.rwr.c,
        perm: &perm,
        block_sizes: &ordering.block_sizes,
        degrees: &degrees,
        l2_inv: &l2_inv,
        u2_inv: &u2_inv,
        h12: &h12,
        h21: &h21,
    })
}

/// A preprocessed BEAR solver (output of Algorithm 1), ready to answer
/// queries via block elimination (Algorithm 2).
#[derive(Debug, Clone)]
pub struct Bear {
    /// `L₁⁻¹`/`U₁⁻¹` — inverted factors of `H₁₁` (block diagonal),
    /// either fully resident or paged per block from a v3 index
    /// (see `crate::paging`).
    pub(crate) spokes: SpokeFactors,
    /// `L₂⁻¹` — inverse of the unit-lower factor of the Schur complement.
    pub(crate) l2_inv: CscMatrix,
    /// `U₂⁻¹` — inverse of the upper factor of the Schur complement.
    pub(crate) u2_inv: CscMatrix,
    /// `H₁₂` — spoke → hub block of the reordered `H`.
    pub(crate) h12: CsrMatrix,
    /// `H₂₁` — hub → spoke block of the reordered `H`.
    pub(crate) h21: CsrMatrix,
    /// Full node ordering (reordered position → original node).
    pub(crate) perm: Permutation,
    /// Number of spokes (`n₁`).
    pub(crate) n1: usize,
    /// Number of hubs (`n₂`).
    pub(crate) n2: usize,
    /// Restart probability.
    pub(crate) c: f64,
    /// Sizes of the diagonal blocks of `H₁₁`.
    pub(crate) block_sizes: Vec<usize>,
    /// Undirected degree of every node (used by the effective-importance
    /// variant).
    pub(crate) degrees: Vec<usize>,
    /// Per-stage preprocessing timings (zeros for a loaded index).
    pub(crate) timings: StageTimings,
    /// Lazily computed per-block norm tables for the pruned top-k path
    /// (never persisted; rebuilt on first pruned query).
    pub(crate) topk_bounds: std::sync::OnceLock<crate::topk_pruned::TopKBounds>,
}

impl Bear {
    /// Runs Algorithm 1 on `g`.
    pub fn new(g: &Graph, config: &BearConfig) -> Result<Self> {
        let start = Instant::now();
        let parts = preprocess_to_schur(g, config)?;
        let mut timings = parts.timings;
        let threads = config.effective_threads();

        // Line 8: LU of S and inverted factors. The factorization is
        // inherently sequential (each column depends on the previous
        // ones); the inversion is one independent solve per column and
        // splits across the workers.
        let stage = Instant::now();
        let s_lu = SparseLu::factor(&parts.s.to_csc())?;
        timings.factor_schur = stage.elapsed();
        let stage = Instant::now();
        let l2_inv = par_invert_triangular(s_lu.l(), Triangle::Lower, true, threads)?;
        let u2_inv = par_invert_triangular(s_lu.u(), Triangle::Upper, false, threads)?;
        timings.invert_schur = stage.elapsed();

        // Line 9: drop tolerance (BEAR-Approx only); each of the six
        // matrices is filtered in parallel row/column ranges.
        let stage = Instant::now();
        let xi = config.drop_tolerance;
        let (l1_inv, u1_inv, l2_inv, u2_inv, h12, h21) = if xi > 0.0 {
            (
                par_drop_tolerance_csc(&parts.l1_inv, xi, threads)?,
                par_drop_tolerance_csc(&parts.u1_inv, xi, threads)?,
                par_drop_tolerance_csc(&l2_inv, xi, threads)?,
                par_drop_tolerance_csc(&u2_inv, xi, threads)?,
                par_drop_tolerance_csr(&parts.h12, xi, threads)?,
                par_drop_tolerance_csr(&parts.h21, xi, threads)?,
            )
        } else {
            (parts.l1_inv, parts.u1_inv, l2_inv, u2_inv, parts.h12, parts.h21)
        };
        timings.sparsify = stage.elapsed();
        timings.total = start.elapsed();

        let total_bytes = l1_inv.memory_bytes()
            + u1_inv.memory_bytes()
            + l2_inv.memory_bytes()
            + u2_inv.memory_bytes()
            + h12.memory_bytes()
            + h21.memory_bytes();
        config.budget.check(total_bytes)?;

        Ok(Bear {
            spokes: SpokeFactors::Resident { l1_inv, u1_inv },
            l2_inv,
            u2_inv,
            h12,
            h21,
            perm: parts.perm,
            n1: parts.n1,
            n2: parts.n2,
            c: config.rwr.c,
            block_sizes: parts.block_sizes,
            degrees: parts.degrees,
            timings,
            topk_bounds: std::sync::OnceLock::new(),
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n1 + self.n2
    }

    /// Number of spokes (`n₁`).
    pub fn n_spokes(&self) -> usize {
        self.n1
    }

    /// Number of hubs (`n₂`).
    pub fn n_hubs(&self) -> usize {
        self.n2
    }

    /// Restart probability.
    pub fn restart_probability(&self) -> f64 {
        self.c
    }

    /// Sizes of the diagonal blocks of `H₁₁`.
    pub fn block_sizes(&self) -> &[usize] {
        &self.block_sizes
    }

    /// The node ordering used internally (new position → original node).
    pub fn ordering(&self) -> &Permutation {
        &self.perm
    }

    /// Per-stage preprocessing wall-clock timings. All zeros for an index
    /// loaded from disk (the work happened in another process).
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// The block pager backing the spoke factors, when this index was
    /// loaded out-of-core (v3, [`crate::LoadOptions::resident`] false). `None`
    /// for fully resident indexes. Use it to re-cap the resident set
    /// ([`crate::BlockPager::set_budget`]) or read paging counters
    /// ([`crate::BlockPager::stats`]).
    pub fn pager(&self) -> Option<&crate::BlockPager> {
        self.spokes.pager()
    }

    /// Per-matrix nonzero counts and byte sizes of the precomputed data
    /// (the paper's Table 4 columns).
    pub fn stats(&self) -> PrecomputedStats {
        PrecomputedStats {
            n: self.num_nodes(),
            n1: self.n1,
            n2: self.n2,
            num_blocks: self.block_sizes.len(),
            sum_block_sq: self.block_sizes.iter().map(|&b| (b as u128) * (b as u128)).sum(),
            nnz_l1_inv: self.spokes.nnz(Factor::L1),
            nnz_u1_inv: self.spokes.nnz(Factor::U1),
            nnz_l2_inv: self.l2_inv.nnz(),
            nnz_u2_inv: self.u2_inv.nnz(),
            nnz_h12: self.h12.nnz(),
            nnz_h21: self.h21.nnz(),
            bytes: self.spokes.memory_bytes()
                + self.l2_inv.memory_bytes()
                + self.u2_inv.memory_bytes()
                + self.h12.memory_bytes()
                + self.h21.memory_bytes(),
            timings: self.timings,
        }
    }
}

/// Ascending-degree ordering of the hubs within `S`: degree of hub `i` is
/// the number of off-diagonal nonzeros in row `i` plus column `i` of `S`.
fn hub_degree_ordering(s: &CsrMatrix) -> Permutation {
    let n2 = s.nrows();
    let mut degree = vec![0usize; n2];
    for (r, c, _) in s.iter() {
        if r != c {
            degree[r] += 1;
            degree[c] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n2).collect();
    order.sort_unstable_by_key(|&i| (degree[i], i));
    Permutation::from_new_to_old(order).expect("ordering is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RwrSolver;

    fn star_graph() -> Graph {
        let mut edges = Vec::new();
        for v in 1..8 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        Graph::from_edges(8, &edges).unwrap()
    }

    #[test]
    fn preprocessing_splits_spokes_and_hubs() {
        let g = star_graph();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        assert_eq!(bear.num_nodes(), 8);
        // SlashBurn with k = 1: center 0 plus the final singleton GCC.
        assert_eq!(bear.n_hubs(), 2);
        assert_eq!(bear.n_spokes(), 6);
        assert_eq!(bear.block_sizes().iter().sum::<usize>(), 6);
    }

    #[test]
    fn stats_report_all_matrices() {
        let g = star_graph();
        let bear = Bear::new(&g, &BearConfig::default()).unwrap();
        let st = bear.stats();
        assert_eq!(st.n, 8);
        assert!(st.bytes > 0);
        assert!(st.nnz_l1_inv >= 6); // at least the unit diagonal
        assert_eq!(st.sum_block_sq, 6);
    }

    #[test]
    fn budget_violation_reported() {
        let g = star_graph();
        let config = BearConfig {
            budget: MemBudget::bytes(8), // absurdly small
            ..BearConfig::default()
        };
        assert!(matches!(Bear::new(&g, &config), Err(bear_sparse::Error::OutOfBudget { .. })));
    }

    #[test]
    fn invalid_c_rejected() {
        let g = star_graph();
        assert!(Bear::new(&g, &BearConfig::exact(0.0)).is_err());
        assert!(Bear::new(&g, &BearConfig::exact(1.0)).is_err());
    }

    #[test]
    fn drop_tolerance_shrinks_matrices() {
        let g = bear_graph::generators::hub_and_spoke(
            &bear_graph::generators::HubSpokeConfig {
                num_hubs: 4,
                num_caves: 20,
                max_cave_size: 5,
                cave_density: 0.4,
                hub_links: 2,
                hub_density: 0.6,
            },
            &mut rand_rng(3),
        );
        let exact = Bear::new(&g, &BearConfig::exact(0.05)).unwrap();
        let approx = Bear::new(&g, &BearConfig::approx(0.05, 0.01)).unwrap();
        assert!(approx.stats().bytes <= exact.stats().bytes);
        assert!(approx.memory_bytes() <= exact.memory_bytes());
    }

    fn rand_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// The streamed out-of-core preprocessing path must write the exact
    /// bytes `Bear::new` + `save_v3` would: per-block factorization,
    /// the block-streamed Schur complement, and per-block sparsification
    /// are all proven bit-identical to the in-memory pipeline by
    /// comparing the finished images directly.
    #[test]
    fn streamed_preprocessing_writes_identical_v3_bytes() {
        let g = bear_graph::generators::hub_and_spoke(
            &bear_graph::generators::HubSpokeConfig {
                num_hubs: 5,
                num_caves: 25,
                max_cave_size: 6,
                cave_density: 0.5,
                hub_links: 2,
                hub_density: 0.5,
            },
            &mut rand_rng(17),
        );
        for (tag, xi) in [("exact", 0.0), ("approx", 1e-3)] {
            let cfg = if xi == 0.0 { BearConfig::exact(0.12) } else { BearConfig::approx(0.12, xi) };
            let a = std::env::temp_dir().join(format!("bear_stream_{tag}_mem.idx"));
            let b = std::env::temp_dir().join(format!("bear_stream_{tag}_disk.idx"));
            Bear::new(&g, &cfg).unwrap().save_v3(&a).unwrap();
            preprocess_to_disk(&g, &cfg, &b).unwrap();
            let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
            std::fs::remove_file(&a).ok();
            std::fs::remove_file(&b).ok();
            assert_eq!(ba, bb, "{tag}: streamed image differs from the in-memory one");
        }
    }

    /// The streamed path must work under a budget far below the total
    /// index size (that is its purpose), and the result must load and
    /// answer queries.
    #[test]
    fn streamed_preprocessing_loads_and_answers() {
        let g = star_graph();
        let cfg = BearConfig::exact(0.1);
        let path = std::env::temp_dir().join("bear_stream_roundtrip.idx");
        preprocess_to_disk(&g, &cfg, &path).unwrap();
        let loaded = Bear::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let oracle = Bear::new(&g, &cfg).unwrap();
        for seed in 0..g.num_nodes() {
            assert_eq!(oracle.query(seed).unwrap(), loaded.query(seed).unwrap());
        }
    }

    #[test]
    fn parallel_preprocessing_matches_serial() {
        let g = bear_graph::generators::hub_and_spoke(
            &bear_graph::generators::HubSpokeConfig {
                num_hubs: 6,
                num_caves: 40,
                max_cave_size: 6,
                cave_density: 0.4,
                hub_links: 1,
                hub_density: 0.5,
            },
            &mut rand_rng(8),
        );
        let serial = Bear::new(&g, &BearConfig::default()).unwrap();
        let parallel = Bear::new(&g, &BearConfig { threads: 4, ..BearConfig::default() }).unwrap();
        assert_eq!(serial.stats(), parallel.stats());
        for seed in [0, 7, 42] {
            assert_eq!(serial.query(seed).unwrap(), parallel.query(seed).unwrap());
        }
    }

    /// Exact per-matrix comparison of every precomputed structure. Used by
    /// [`parallel_preprocessing_is_bit_identical`]; a failure names the
    /// first matrix that diverged.
    fn assert_bear_bit_identical(a: &Bear, b: &Bear) {
        assert_eq!(a.perm.as_new_to_old(), b.perm.as_new_to_old(), "permutation diverged");
        assert_eq!(a.block_sizes, b.block_sizes, "block sizes diverged");
        assert_eq!((a.n1, a.n2), (b.n1, b.n2), "spoke/hub split diverged");
        let (a_l1, a_u1) = a.spokes.to_whole().unwrap();
        let (b_l1, b_u1) = b.spokes.to_whole().unwrap();
        assert_eq!(a_l1, b_l1, "L1_inv diverged");
        assert_eq!(a_u1, b_u1, "U1_inv diverged");
        assert_eq!(a.l2_inv, b.l2_inv, "L2_inv diverged");
        assert_eq!(a.u2_inv, b.u2_inv, "U2_inv diverged");
        assert_eq!(a.h12, b.h12, "H12 diverged");
        assert_eq!(a.h21, b.h21, "H21 diverged");
    }

    /// The determinism guarantee of the parallel preprocessing path:
    /// `Bear::new` is *bit-identical* — exact `==` on all six matrices and
    /// the permutation — for `threads = 1` vs `threads ∈ {2, 4, 8}`, both
    /// exact and with drop-tolerance sparsification. `BEAR_TEST_THREADS`
    /// adds an extra thread count so the CI matrix exercises others.
    #[test]
    fn parallel_preprocessing_is_bit_identical() {
        let g = bear_graph::generators::hub_and_spoke(
            &bear_graph::generators::HubSpokeConfig {
                num_hubs: 5,
                num_caves: 30,
                max_cave_size: 7,
                cave_density: 0.5,
                hub_links: 2,
                hub_density: 0.5,
            },
            &mut rand_rng(21),
        );
        let mut thread_counts = vec![2usize, 4, 8];
        if let Ok(extra) = std::env::var("BEAR_TEST_THREADS") {
            if let Ok(n) = extra.trim().parse::<usize>() {
                if n > 1 && !thread_counts.contains(&n) {
                    thread_counts.push(n);
                }
            }
        }
        for xi in [0.0, 1e-3] {
            let base = BearConfig { drop_tolerance: xi, ..BearConfig::default() };
            let serial = Bear::new(&g, &BearConfig { threads: 1, ..base }).unwrap();
            for &threads in &thread_counts {
                let parallel = Bear::new(&g, &BearConfig { threads, ..base }).unwrap();
                assert_bear_bit_identical(&serial, &parallel);
            }
        }
    }

    #[test]
    fn non_finite_or_negative_drop_tolerance_rejected() {
        let g = star_graph();
        for xi in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            let config = BearConfig { drop_tolerance: xi, ..BearConfig::default() };
            let err = Bear::new(&g, &config).unwrap_err();
            assert!(
                matches!(err, bear_sparse::Error::InvalidConfig { param: "drop_tolerance", .. }),
                "xi = {xi}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn effective_threads_resolves_zero_to_available() {
        assert!(BearConfig { threads: 0, ..BearConfig::default() }.effective_threads() >= 1);
        assert_eq!(BearConfig { threads: 3, ..BearConfig::default() }.effective_threads(), 3);
    }
}
