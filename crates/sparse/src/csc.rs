//! Compressed sparse column matrix, used by the factorization and
//! triangular-solve kernels (which are naturally column-oriented).

use crate::block::DenseBlock;
use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::validate::{check_compressed, check_finite, Invariant, Mutation};

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Same invariants as [`CsrMatrix`] with rows/columns swapped: `indptr` has
/// one entry per column, `indices` are row indices strictly increasing
/// within each column.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix after validating structural invariants.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        // Validate by borrowing the CSR checker on the transposed shape.
        let as_csr = CsrMatrix::from_raw(ncols, nrows, indptr, indices, values)?;
        let (indptr, indices, values) = {
            let t = as_csr;
            (t.indptr().to_vec(), t.indices().to_vec(), t.values().to_vec())
        };
        Ok(CscMatrix { nrows, ncols, indptr, indices, values })
    }

    /// Builds a CSC matrix after running the full [`Invariant`] audit:
    /// everything [`CscMatrix::from_raw`] checks, plus finiteness of every
    /// stored value. This is the constructor for trust boundaries
    /// (deserialization, file ingestion).
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = Self::from_raw(nrows, ncols, indptr, indices, values)?;
        check_finite(m.values())?;
        Ok(m)
    }

    /// Builds a CSC matrix without validation (see
    /// [`CsrMatrix::from_raw_unchecked`]). With the `strict-invariants`
    /// feature the full audit runs anyway and panics on violation.
    pub fn from_raw_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), ncols + 1);
        debug_assert_eq!(indices.len(), values.len());
        let m = CscMatrix { nrows, ncols, indptr, indices, values };
        #[cfg(feature = "strict-invariants")]
        crate::validate::assert_strict(&m, "CscMatrix::from_raw_unchecked");
        m
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw column pointer array.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw row index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.indptr[c], self.indptr[c + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(r, c)` or zero.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (rows, vals) = self.col(c);
        match rows.binary_search(&r) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Converts to CSR (O(nnz) reshuffle).
    pub fn to_csr(&self) -> CsrMatrix {
        // A CSC matrix's arrays are exactly the CSR arrays of its transpose.
        let t = CsrMatrix::from_raw_unchecked(
            self.ncols,
            self.nrows,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.clone(),
        );
        t.transpose()
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                op: "csc matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.matvec_acc(x, &mut y)?;
        Ok(y)
    }

    /// `y = A x` written into a caller-owned buffer: the allocation-free
    /// form of [`CscMatrix::matvec`], bit-identical to it (same scatter
    /// order). `y` must not alias `x`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                op: "csc matvec_into",
                lhs: (self.nrows, self.ncols),
                rhs: (y.len(), x.len()),
            });
        }
        y.fill(0.0);
        self.matvec_acc(x, y)
    }

    /// `y += A x` accumulated into a caller-owned buffer (no allocation).
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(Error::DimensionMismatch {
                op: "csc matvec_acc",
                lhs: (self.nrows, self.ncols),
                rhs: (y.len(), x.len()),
            });
        }
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r] += v * xc;
            }
        }
        Ok(())
    }

    /// `Y = A X` for a column-major dense block: the multi-RHS form of
    /// [`CscMatrix::matvec_into`]. Column `j` of `Y` is bit-identical to
    /// `matvec_into(X.col(j), Y.col(j))` — per RHS column the scatter
    /// visits matrix columns in the same order and keeps the same
    /// `x == 0` skip — but each matrix column's structure is walked once
    /// for all `k` right-hand sides. Width-1 blocks delegate to the
    /// vector kernel outright.
    pub fn spmm_into(&self, x: &DenseBlock, y: &mut DenseBlock) -> Result<()> {
        if x.nrows() != self.ncols || y.nrows() != self.nrows || x.ncols() != y.ncols() {
            return Err(Error::DimensionMismatch {
                op: "csc spmm_into",
                lhs: (self.nrows, self.ncols),
                rhs: (x.nrows(), x.ncols()),
            });
        }
        if x.ncols() == 1 {
            return self.matvec_into(x.col(0), y.col_mut(0));
        }
        y.fill(0.0);
        self.spmm_acc_inner(x, y);
        Ok(())
    }

    /// `Y += A X` accumulated into a caller-owned block: the multi-RHS
    /// form of [`CscMatrix::matvec_acc`], with the same per-column
    /// bit-identity guarantee as [`CscMatrix::spmm_into`].
    pub fn spmm_acc(&self, x: &DenseBlock, y: &mut DenseBlock) -> Result<()> {
        if x.nrows() != self.ncols || y.nrows() != self.nrows || x.ncols() != y.ncols() {
            return Err(Error::DimensionMismatch {
                op: "csc spmm_acc",
                lhs: (self.nrows, self.ncols),
                rhs: (x.nrows(), x.ncols()),
            });
        }
        if x.ncols() == 1 {
            return self.matvec_acc(x.col(0), y.col_mut(0));
        }
        self.spmm_acc_inner(x, y);
        Ok(())
    }

    /// Shared scatter loop of the blocked multiplies (dimensions already
    /// checked): matrix columns outer so each column's structure is hot
    /// in cache while all `k` right-hand sides consume it.
    fn spmm_acc_inner(&self, x: &DenseBlock, y: &mut DenseBlock) {
        let k = x.ncols();
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            if rows.is_empty() {
                continue;
            }
            for j in 0..k {
                let xc = x[(c, j)];
                if xc == 0.0 {
                    continue;
                }
                let yj = y.col_mut(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    yj[r] += v * xc;
                }
            }
        }
    }

    /// Iterates over stored entries as `(row, col, value)` in column-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals.iter()).map(move |(&r, &v)| (r, c, v))
        })
    }
}

impl Invariant for CscMatrix {
    fn validate(&self) -> Result<()> {
        // A CSC matrix is structurally a CSR matrix of its transpose:
        // columns are the outer axis, row indices the inner.
        check_compressed(
            "column",
            self.ncols,
            self.nrows,
            &self.indptr,
            &self.indices,
            &self.values,
        )?;
        check_finite(&self.values)
    }
}

impl CscMatrix {
    /// Test support: breaks exactly one invariant in place, bypassing every
    /// constructor check. Returns whether the mutation was applicable.
    /// See [`crate::validate`].
    #[doc(hidden)]
    pub fn apply_mutation(&mut self, mutation: Mutation) -> bool {
        crate::csr::apply_compressed_mutation(
            mutation,
            self.nrows,
            &mut self.indptr,
            &mut self.indices,
            &mut self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 2, 2.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.push(2, 2, 5.0);
        m.to_csr()
    }

    #[test]
    fn csr_csc_round_trip() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        assert_eq!(csc.nnz(), csr.nnz());
        assert_eq!(csc.get(2, 0), 4.0);
        assert_eq!(csc.get(0, 2), 2.0);
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn csc_matvec_agrees_with_csr() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        let x = vec![1.0, 2.0, -1.0];
        assert_eq!(csc.matvec(&x).unwrap(), csr.matvec(&x).unwrap());
    }

    #[test]
    fn col_access() {
        let csc = sample_csr().to_csc();
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
    }

    #[test]
    fn identity_round_trips() {
        let i = CscMatrix::identity(3);
        assert_eq!(i.to_csr(), CsrMatrix::identity(3));
    }

    #[test]
    fn from_raw_validates() {
        // Row indices out of bounds.
        assert!(CscMatrix::from_raw(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Valid 2x1 column.
        let m = CscMatrix::from_raw(2, 1, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 5.0)] {
            coo.push(r, c, v);
        }
        let csc = coo.to_csr().to_csc();
        let x = [0.5, -2.5, 1.5];
        let allocated = csc.matvec(&x).unwrap();
        let mut buf = vec![7.7; 3]; // stale contents must be zeroed first
        csc.matvec_into(&x, &mut buf).unwrap();
        assert_eq!(buf, allocated);
        // And the accumulating form adds on top.
        let mut acc = allocated.clone();
        csc.matvec_acc(&x, &mut acc).unwrap();
        for (a, b) in acc.iter().zip(&allocated) {
            assert_eq!(*a, 2.0 * b);
        }
        assert!(csc.matvec_into(&x, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn spmm_columns_bitwise_equal_matvec() {
        let csc = sample_csr().to_csc();
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|j| {
                (0..3)
                    .map(|i| if (i + j) % 3 == 0 { 0.0 } else { ((i * 3 + j) as f64).cos() * 7.7 })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let x = DenseBlock::from_columns(3, &refs).unwrap();
        let mut y = DenseBlock::zeros(3, 4);
        csc.spmm_into(&x, &mut y).unwrap();
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(y.col(j), csc.matvec(col).unwrap(), "column {j}");
        }
        let mut acc = y.clone();
        csc.spmm_acc(&x, &mut acc).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let mut want = y.col(j).to_vec();
            csc.matvec_acc(col, &mut want).unwrap();
            assert_eq!(acc.col(j), &want[..], "column {j}");
        }
        // Width-1 fallback and shape validation.
        let one = DenseBlock::from_columns(3, &[cols[0].as_slice()]).unwrap();
        let mut y1 = DenseBlock::zeros(3, 1);
        csc.spmm_into(&one, &mut y1).unwrap();
        assert_eq!(y1.col(0), csc.matvec(&cols[0]).unwrap());
        assert!(csc.spmm_into(&DenseBlock::zeros(2, 4), &mut DenseBlock::zeros(3, 4)).is_err());
        assert!(csc.spmm_acc(&DenseBlock::zeros(3, 4), &mut DenseBlock::zeros(3, 2)).is_err());
    }
}
