//! Extension experiment (DESIGN.md §6): the memory-lean iterative hub
//! solver (`BearHubIterative`) vs standard BEAR-Exact. On hub-heavy
//! graphs, BEAR's space is dominated by the inverted Schur factors
//! (`≈ n₂²` nonzeros, Table 4); keeping the sparse `S` and solving it
//! per query — the direction the BePI follow-up took — trades query
//! time for that space.
//!
//! ```text
//! cargo run --release -p bear-bench --bin ext_hub_iterative \
//!     [--datasets citation_like,trust_like,email_like] [--seeds N] [--json out.json]
//! ```

use bear_bench::cli::{Args, CommonOpts};
use bear_bench::experiments::load_dataset;
use bear_bench::harness::{mean_query_time, measure, ExperimentResult, ResultRow};
use bear_core::{Bear, BearConfig, BearHubIterative, RwrSolver};

fn main() {
    let args = Args::from_env();
    let opts = CommonOpts::from_args(&args, &["citation_like", "trust_like", "email_like"]);
    let mut out = ExperimentResult::new(
        "ext_hub_iterative",
        "inverted Schur factors (BEAR-Exact) vs iterative hub solve (BEAR-HubIter)",
    );
    for dataset in &opts.datasets {
        let g = load_dataset(dataset);
        let config = BearConfig::exact(0.05);

        let (exact, pre_exact) = measure(|| Bear::new(&g, &config).expect("exact"));
        let mut row = ResultRow::new(dataset, "BEAR-Exact");
        row.preprocess_s = Some(pre_exact);
        row.query_s = Some(mean_query_time(&exact, opts.num_seeds));
        row.memory_bytes = Some(exact.memory_bytes());
        out.rows.push(row);

        let (hub_iter, pre_iter) =
            measure(|| BearHubIterative::new(&g, &config).expect("hub-iter"));
        let mut row = ResultRow::new(dataset, "BEAR-HubIter");
        row.preprocess_s = Some(pre_iter);
        row.query_s = Some(mean_query_time(&hub_iter, opts.num_seeds));
        row.memory_bytes = Some(hub_iter.memory_bytes());
        out.rows.push(row);
    }
    out.print_table();
    if let Some(path) = &opts.json {
        out.write_json(path).expect("write json");
        println!("wrote {path}");
    }
}
