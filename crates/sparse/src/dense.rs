//! Dense row-major matrix used for small blocks, oracles in tests, and the
//! dense baselines (Inversion, QR decomposition).

use crate::csr::CsrMatrix;
use crate::error::{Error, Result};
use crate::validate::{check_finite, Invariant};
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::InvalidStructure(format!(
                "dense data length {} != {nrows} * {ncols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Builds from a row-major data vector after running the full
    /// [`Invariant`] audit: the length check of [`DenseMatrix::from_vec`],
    /// plus finiteness of every entry.
    pub fn try_from_parts(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        let m = Self::from_vec(nrows, ncols, data)?;
        m.validate()?;
        Ok(m)
    }

    /// Builds from nested rows (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(Error::InvalidStructure("ragged rows".into()));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Underlying storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(Error::DimensionMismatch {
                op: "dense matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.nrows).map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum()).collect())
    }

    /// `C = A B` (naive triple loop with row-major friendly ordering).
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(Error::DimensionMismatch {
                op: "dense matmul",
                lhs: (self.nrows, self.ncols),
                rhs: (other.nrows, other.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Converts to CSR, keeping entries with `|v| > drop_tol`.
    pub fn to_csr(&self, drop_tol: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.nrows {
            for (c, &v) in self.row(r).iter().enumerate() {
                if v.abs() > drop_tol {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(self.nrows, self.ncols, indptr, indices, values)
    }

    /// Maximum absolute entry-wise difference with another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

impl Invariant for DenseMatrix {
    fn validate(&self) -> Result<()> {
        if self.data.len() != self.nrows * self.ncols {
            return Err(Error::InvalidStructure(format!(
                "dense data length {} != {} * {}",
                self.data.len(),
                self.nrows,
                self.ncols
            )));
        }
        check_finite(&self.data)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn to_csr_drops_small_entries() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1e-12], &[0.0, 2.0]]).unwrap();
        let s = a.to_csr(1e-9);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 1), 2.0);
    }

    #[test]
    fn matvec_known_result() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }
}
